// Adaptive scheduler (Sec. 5.1): translates a user error bound epsilon into a
// key-space distance threshold d = ln(epsilon) / (2R) (Lemma 1), counts
// clusters that can be merged without violating the bound via the S1/S2
// halving test (Eq. 5, a greedy relaxation of minimum clique cover), and
// shrinks the group count N with a momentum update.
#ifndef RITA_CORE_ADAPTIVE_SCHEDULER_H_
#define RITA_CORE_ADAPTIVE_SCHEDULER_H_

#include <vector>

#include "core/group_attention.h"

namespace rita {
namespace core {

struct AdaptiveSchedulerOptions {
  /// Error bound epsilon > 1 from Lemma 1; the paper's default is 2.
  float epsilon = 2.0f;
  /// Momentum alpha of the group-count update N <- a (N - D) + (1 - a) N.
  float momentum = 0.5f;
  /// Floor for N.
  int64_t min_groups = 2;
};

/// Stateless decision logic; per-layer state (the current N) lives in the
/// GroupAttentionMechanism itself.
class AdaptiveScheduler {
 public:
  explicit AdaptiveScheduler(const AdaptiveSchedulerOptions& options);

  /// d = ln(epsilon) / (2 R): the Lemma 1 bound on the key-to-representative
  /// distance that keeps every attention ratio within [1/eps, eps].
  static float DistanceThreshold(float epsilon, float ball_radius);

  /// Number of clusters (D) in snapshot that the Eq. 5 test marks mergeable.
  int64_t CountMergeable(const GroupingSnapshot& snapshot) const;

  /// Momentum-smoothed new group count given the last forward's snapshots
  /// (D is averaged over batch*head slices).
  int64_t ProposeGroupCount(const std::vector<GroupingSnapshot>& snapshots,
                            int64_t current_groups) const;

  /// Applies ProposeGroupCount to a mechanism in place; returns the new N.
  int64_t Update(GroupAttentionMechanism* mechanism) const;

  const AdaptiveSchedulerOptions& options() const { return options_; }

 private:
  AdaptiveSchedulerOptions options_;
};

}  // namespace core
}  // namespace rita

#endif  // RITA_CORE_ADAPTIVE_SCHEDULER_H_
