#include "core/attention_factory.h"

namespace rita {
namespace core {

std::unique_ptr<attn::AttentionMechanism> CreateAttentionMechanism(
    int64_t head_dim, const AttentionOptions& options, Rng* rng) {
  switch (options.kind) {
    case attn::AttentionKind::kVanilla:
      return std::make_unique<attn::VanillaAttention>(head_dim, options.dropout, rng);
    case attn::AttentionKind::kGroup:
      return std::make_unique<GroupAttentionMechanism>(head_dim, options.group, rng);
    case attn::AttentionKind::kPerformer:
      return std::make_unique<attn::PerformerAttention>(head_dim,
                                                        options.performer_features, rng);
    case attn::AttentionKind::kLinformer:
      RITA_CHECK_GT(options.seq_len, 0) << "Linformer needs the sequence length";
      return std::make_unique<attn::LinformerAttention>(
          head_dim, options.seq_len, std::min(options.linformer_k, options.seq_len),
          rng);
  }
  RITA_CHECK(false) << "unknown attention kind";
  return nullptr;
}

}  // namespace core
}  // namespace rita
