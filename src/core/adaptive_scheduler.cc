#include "core/adaptive_scheduler.h"

#include <cmath>
#include <limits>

namespace rita {
namespace core {

AdaptiveScheduler::AdaptiveScheduler(const AdaptiveSchedulerOptions& options)
    : options_(options) {
  RITA_CHECK_GT(options_.epsilon, 1.0f) << "Lemma 1 requires epsilon > 1";
  RITA_CHECK_GT(options_.momentum, 0.0f);
  RITA_CHECK_LE(options_.momentum, 1.0f);
}

float AdaptiveScheduler::DistanceThreshold(float epsilon, float ball_radius) {
  RITA_CHECK_GT(epsilon, 1.0f);
  if (ball_radius <= 0.0f) return std::numeric_limits<float>::max();
  return std::log(epsilon) / (2.0f * ball_radius);
}

int64_t AdaptiveScheduler::CountMergeable(const GroupingSnapshot& snapshot) const {
  const int64_t ng = snapshot.centroids.size(0);
  if (ng < 2) return 0;
  const int64_t dim = snapshot.centroids.size(1);
  // Lemma 1's exponent is q . (k~ - k); our scores carry the 1/sqrt(d_head)
  // scaling, so the effective ball radius is |q|_max / sqrt(d_head). Fall
  // back to the paper-literal key radius when query stats are absent.
  const float ball = snapshot.query_ball_radius > 0.0f
                         ? snapshot.query_ball_radius /
                               std::sqrt(static_cast<float>(dim))
                         : snapshot.key_ball_radius;
  const float d = DistanceThreshold(options_.epsilon, ball);
  const int64_t half = ng / 2;
  const float* c = snapshot.centroids.data();

  auto center_dist = [&](int64_t i, int64_t j) {
    float s = 0.0f;
    for (int64_t k = 0; k < dim; ++k) {
      const float diff = c[i * dim + k] - c[j * dim + k];
      s += diff * diff;
    }
    return std::sqrt(s);
  };

  // S1 = clusters [0, half), S2 = [half, ng). A cluster j in S2 is marked when
  // some transfer node i in S1 satisfies Eq. 5:
  //   |c_i - c_j| + radius_i <= d   and   |c_i - c_j| + radius_j <= d / 2.
  int64_t marked = 0;
  for (int64_t j = half; j < ng; ++j) {
    for (int64_t i = 0; i < half; ++i) {
      const float cd = center_dist(i, j);
      if (cd + snapshot.radii[i] <= d && cd + snapshot.radii[j] <= d / 2.0f) {
        ++marked;
        break;
      }
    }
  }
  return marked;
}

int64_t AdaptiveScheduler::ProposeGroupCount(
    const std::vector<GroupingSnapshot>& snapshots, int64_t current_groups) const {
  if (snapshots.empty()) return current_groups;
  double total_mergeable = 0.0;
  for (const auto& snap : snapshots) {
    total_mergeable += static_cast<double>(CountMergeable(snap));
  }
  const double avg_d = total_mergeable / static_cast<double>(snapshots.size());
  // Momentum update: N <- alpha (N - D) + (1 - alpha) N = N - alpha D.
  const double updated =
      options_.momentum * (current_groups - avg_d) +
      (1.0 - options_.momentum) * static_cast<double>(current_groups);
  const int64_t rounded = static_cast<int64_t>(std::llround(updated));
  return std::max<int64_t>(options_.min_groups, std::min(rounded, current_groups));
}

int64_t AdaptiveScheduler::Update(GroupAttentionMechanism* mechanism) const {
  RITA_CHECK(mechanism != nullptr);
  const int64_t next =
      ProposeGroupCount(mechanism->last_snapshots(), mechanism->num_groups());
  mechanism->set_num_groups(next);
  return next;
}

}  // namespace core
}  // namespace rita
