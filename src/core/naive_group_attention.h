// The naive solution of Sec. 4.2.1: after grouping, *restore* the full n x n
// attention matrix from the n x N group matrix and proceed like vanilla
// attention. Mathematically identical to the fused group attention (that is
// Lemma 3), but it pays the quadratic memory the fused Alg. 1 eliminates.
// Kept as (a) an executable correctness oracle for the fused path and (b) the
// ablation baseline quantifying what embedding aggregation + group softmax
// buy (bench_micro_attention).
#ifndef RITA_CORE_NAIVE_GROUP_ATTENTION_H_
#define RITA_CORE_NAIVE_GROUP_ATTENTION_H_

#include "core/group_attention.h"

namespace rita {
namespace core {

/// Restore-then-softmax group attention: O(n^2) space like vanilla.
class NaiveGroupAttention : public attn::AttentionMechanism {
 public:
  NaiveGroupAttention(int64_t head_dim, const GroupAttentionOptions& options, Rng* rng);

  using attn::AttentionMechanism::Forward;
  ag::Variable Forward(const ag::Variable& q, const ag::Variable& k,
                       const ag::Variable& v, attn::ForwardState* state) override;

  attn::AttentionKind kind() const override { return attn::AttentionKind::kGroup; }
  /// The whole point of the fused path: the naive one is quadratic again.
  int64_t ScoreMatrixElements(int64_t n) const override { return n * n; }

  int64_t num_groups() const { return num_groups_; }

  /// RNG root (see GroupAttentionMechanism::seed); set to mirror a fused
  /// mechanism so both produce the same grouping.
  uint64_t seed() const { return seed_; }
  void set_seed(uint64_t seed) { seed_ = seed; }

 private:
  int64_t head_dim_;
  GroupAttentionOptions options_;
  int64_t num_groups_;
  // Root of the counter-based per-slice RNG streams (see GroupAttention).
  uint64_t seed_;
};

}  // namespace core
}  // namespace rita

#endif  // RITA_CORE_NAIVE_GROUP_ATTENTION_H_
