#include "core/group_attention.h"

#include <cmath>

#include "autograd/function.h"
#include "linalg/kernels/kernels.h"
#include "tensor/tensor_ops.h"

namespace rita {
namespace core {

namespace {

// Per-(batch*head) saved state for the fused backward.
struct SliceState {
  std::vector<int64_t> assignment;  // [n] group id per window
  std::vector<int64_t> counts;      // [N]
  Tensor centroids;                 // R: [N, d_head] (group key representatives)
  Tensor a_tilde;                   // group attention matrix A~: [n, N]
  Tensor v_tilde;                   // aggregated values V~: [N, d_head]
};

// Fused implementation of Alg. 1 with the analytic backward derived from the
// group softmax (Eq. 3):
//   A~_ij = W_ij / s_i,  W = exp(P~),  s_i = sum_j counts_j W_ij
//   dP~_ik = A~_ik (dA~_ik - counts_k * t_i),  t_i = sum_j A~_ij dA~_ij
// which reduces to the classical softmax Jacobian when all counts are 1.
// Gradients flow to K through the centroids (mean of member keys):
//   dK_x = dR_{g(x)} / counts_{g(x)}.
class GroupAttentionFunction : public ag::Function {
 public:
  GroupAttentionFunction(std::vector<SliceState> states, Tensor q, float scale,
                         std::shared_ptr<ExecutionContext*> context_cell)
      : states_(std::move(states)),
        q_(std::move(q)),
        scale_(scale),
        context_cell_(std::move(context_cell)) {}

  std::string name() const override { return "GroupAttention"; }

  std::vector<Tensor> Backward(const Tensor& g) override {
    // Re-read the shared cell at backward time: a context swapped out or
    // destroyed between forward and backward — or a destroyed mechanism —
    // resolves to the default context instead of a dangling pointer.
    ExecutionContext* context =
        attn::AttentionMechanism::ResolveExecutionContext(context_cell_);
    const int64_t bh = q_.size(0), n = q_.size(1), d = q_.size(2);
    Tensor dq(q_.shape());
    Tensor dk(q_.shape());
    Tensor dv(q_.shape());
    const float* pg = g.data();
    const float* pq = q_.data();
    float* pdq = dq.data();
    float* pdk = dk.data();
    float* pdv = dv.data();

    // Slices write disjoint [n, d] blocks of dQ/dK/dV, so the slice loop
    // shards freely across the pool; each shard leases scratch from the arena
    // so the per-slice temporaries are recycled instead of reallocated.
    context->ParallelFor(0, bh, [&](int64_t s0, int64_t s1) {
      ScratchArena::Lease scratch = context->arena()->Acquire();
      for (int64_t s = s0; s < s1; ++s) {
        scratch.Reset();
        const SliceState& st = states_[s];
        const int64_t ng = st.centroids.size(0);
        const float* g_s = pg + s * n * d;     // dO [n, d]
        const float* q_s = pq + s * n * d;     // Q  [n, d]
        const float* at = st.a_tilde.data();   // A~ [n, ng]
        const float* vt = st.v_tilde.data();   // V~ [ng, d]
        const float* r = st.centroids.data();  // R  [ng, d]

        // dV~ = A~^T dO : [ng, d]
        float* dvt = scratch.Floats(ng * d);
        ops::Gemm2D(at, g_s, dvt, ng, d, n, /*trans_a=*/true, /*trans_b=*/false,
                    /*parallel=*/false);
        // Scatter: dV_x = dV~_{g(x)}.
        float* dv_s = pdv + s * n * d;
        for (int64_t i = 0; i < n; ++i) {
          const float* src = dvt + st.assignment[i] * d;
          std::copy(src, src + d, dv_s + i * d);
        }

        // dA~ = dO V~^T : [n, ng]
        float* dat = scratch.Floats(n * ng);
        ops::Gemm2D(g_s, vt, dat, n, ng, d, /*trans_a=*/false, /*trans_b=*/true,
                    /*parallel=*/false);

        // dP~_ik = A~_ik (dA~_ik - counts_k * t_i), t_i = sum_j A~_ij dA~_ij.
        float* dpt = scratch.Floats(n * ng);
        for (int64_t i = 0; i < n; ++i) {
          const float* arow = at + i * ng;
          const float* darow = dat + i * ng;
          float* out = dpt + i * ng;
          float t = 0.0f;
          for (int64_t j = 0; j < ng; ++j) t += arow[j] * darow[j];
          for (int64_t j = 0; j < ng; ++j) {
            out[j] = arow[j] * (darow[j] - static_cast<float>(st.counts[j]) * t);
          }
        }

        // dQ = scale * dP~ R : [n, d]
        float* dq_s = pdq + s * n * d;
        ops::Gemm2D(dpt, r, dq_s, n, d, ng, false, false, /*parallel=*/false);
        kernels::Scale(dq_s, n * d, scale_);

        // dR = scale * dP~^T Q : [ng, d]; then dK_x = dR_{g(x)} / counts.
        float* dr = scratch.Floats(ng * d);
        ops::Gemm2D(dpt, q_s, dr, ng, d, n, /*trans_a=*/true, false,
                    /*parallel=*/false);
        float* dk_s = pdk + s * n * d;
        for (int64_t i = 0; i < n; ++i) {
          const int64_t c = st.assignment[i];
          const float inv = scale_ / static_cast<float>(st.counts[c]);
          const float* src = dr + c * d;
          float* dst = dk_s + i * d;
          for (int64_t j = 0; j < d; ++j) dst[j] = src[j] * inv;
        }
      }
    });
    return {dq, dk, dv};
  }

 private:
  std::vector<SliceState> states_;
  Tensor q_;
  float scale_;
  std::shared_ptr<ExecutionContext*> context_cell_;
};

}  // namespace

InferenceGrouping GroupSliceForInference(const Tensor& keys, const float* v_slice,
                                         const cluster::KMeansOptions& km, Rng* rng,
                                         ExecutionContext* context) {
  RITA_CHECK_EQ(keys.dim(), 2);
  const int64_t n = keys.size(0), d = keys.size(1);
  InferenceGrouping out;
  out.grouping = cluster::RunKMeans(keys, km, rng, context);
  const int64_t ng = out.grouping.num_clusters();

  // Group sizes as the softmax denominator weights (Eq. 3).
  out.weights.resize(ng);
  for (int64_t j = 0; j < ng; ++j) {
    out.weights[j] = static_cast<float>(out.grouping.counts[j]);
  }

  // Embedding aggregation: V~_j = sum_{g(x) = j} V_x : [ng, d]
  out.v_tilde = Tensor::Zeros({ng, d});
  float* pvt = out.v_tilde.data();
  for (int64_t i = 0; i < n; ++i) {
    kernels::Add(pvt + out.grouping.assignment[i] * d, v_slice + i * d, d);
  }
  return out;
}

void GroupAttendRows(const float* q_rows, const InferenceGrouping& grouping,
                     float* out_rows, int64_t rows, int64_t d, float scale,
                     ScratchArena::Lease* scratch) {
  kernels::FusedScoreSoftmaxWeightedSum(
      q_rows, grouping.grouping.centroids.data(), grouping.v_tilde.data(), out_rows,
      rows, grouping.num_groups(), d, scale, grouping.weights.data(), scratch);
}

cluster::KMeansOptions GroupAttentionMechanism::InferenceKMeans(int64_t n) const {
  cluster::KMeansOptions km;
  km.num_clusters = std::min<int64_t>(num_groups_, n);
  km.max_iters = options_.kmeans_iters;
  km.kmeanspp_init = options_.kmeanspp_init;
  // The per-slice loop is the parallel grain in the sequential forward; each
  // slice's k-means and GEMMs run inline on that slice's thread. (The graph
  // lowering flips this to true — bit-identical by RunKMeans' contract.)
  km.parallel = false;
  return km;
}

GroupAttentionMechanism::GroupAttentionMechanism(int64_t head_dim,
                                                 const GroupAttentionOptions& options,
                                                 Rng* rng)
    : head_dim_(head_dim),
      options_(options),
      num_groups_(options.num_groups),
      seed_(rng->NextU64()) {
  RITA_CHECK_GT(num_groups_, 0);
}

void GroupAttentionMechanism::set_num_groups(int64_t n) {
  num_groups_ = std::max<int64_t>(1, n);
}

ag::Variable GroupAttentionMechanism::Forward(const ag::Variable& q,
                                              const ag::Variable& k,
                                              const ag::Variable& v,
                                              attn::ForwardState* state) {
  RITA_CHECK_EQ(q.dim(), 3);
  RITA_CHECK_EQ(q.size(2), head_dim_);
  const int64_t bh = q.size(0), n = q.size(1), d = q.size(2);
  RITA_CHECK(k.shape() == q.shape());
  RITA_CHECK(v.shape() == q.shape());
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  ExecutionContext* context = ResolveContext(*state);

  const cluster::KMeansOptions km = InferenceKMeans(n);

  Tensor out({bh, n, d});
  std::vector<SliceState> states(bh);
  std::vector<GroupingSnapshot>* snapshots = state->snapshots;
  if (snapshots != nullptr) snapshots->assign(bh, GroupingSnapshot());
  const uint64_t stream = state->DrawStream();

  const float* pq = q.data().data();
  const float* pk = k.data().data();
  const float* pv = v.data().data();
  float* po = out.data();

  // Inference (no grad recording) runs the fused score→softmax→weighted-sum
  // tile kernel and never materialises A~ or per-slice backward state; the
  // training path keeps the unfused pipeline because backward needs A~/V~.
  // On the scalar backend both paths are bit-identical (the fused driver tiles
  // over rows of per-row-independent kernels).
  const bool need_grad =
      ag::GradModeEnabled() &&
      (q.requires_grad() || q.grad_fn() != nullptr || k.requires_grad() ||
       k.grad_fn() != nullptr || v.requires_grad() || v.grad_fn() != nullptr);

  // One independent unit of Alg. 1 per (batch*head) slice: group the keys,
  // score against the N representatives, group-softmax, aggregate values.
  // Slices share nothing mutable — each has its own SliceState, snapshot slot
  // and counter-derived RNG — so the loop shards freely across the pool.
  context->ParallelFor(0, bh, [&](int64_t s0, int64_t s1) {
    ScratchArena::Lease scratch = context->arena()->Acquire();
    for (int64_t s = s0; s < s1; ++s) {
      scratch.Reset();
      Rng slice_rng = ExecutionContext::SliceRng(seed_, stream, state->SliceKey(s));

      // Keys of this slice (copied into a 2-D tensor for the grouping engine).
      Tensor keys({n, d});
      std::copy(pk + s * n * d, pk + (s + 1) * n * d, keys.data());

      InferenceGrouping ig =
          GroupSliceForInference(keys, pv + s * n * d, km, &slice_rng, context);
      const int64_t ng = ig.num_groups();

      Tensor a_tilde;
      if (need_grad) {
        // P~ = scale * Q R^T : [n, ng]
        float* p_tilde = scratch.Floats(n * ng);
        ops::Gemm2D(pq + s * n * d, ig.grouping.centroids.data(), p_tilde, n, ng, d,
                    /*trans_a=*/false, /*trans_b=*/true, /*parallel=*/false);

        // Group softmax (Eq. 3), stabilised by the row max (shift-invariant).
        a_tilde = Tensor({n, ng});
        kernels::FusedSoftmaxRows(p_tilde, a_tilde.data(), n, ng, scale,
                                  ig.weights.data());

        // O = A~ V~ : [n, d]
        ops::Gemm2D(a_tilde.data(), ig.v_tilde.data(), po + s * n * d, n, d, ng,
                    false, false, /*parallel=*/false);
      } else {
        GroupAttendRows(pq + s * n * d, ig, po + s * n * d, n, d, scale, &scratch);
      }

      if (snapshots != nullptr) {
        GroupingSnapshot& snap = (*snapshots)[s];
        snap.centroids = ig.grouping.centroids;
        snap.counts = ig.grouping.counts;
        snap.radii = cluster::ClusterRadii(keys, ig.grouping);
        snap.key_ball_radius = cluster::PointBallRadius(keys);
        Tensor queries({n, d});
        std::copy(pq + s * n * d, pq + (s + 1) * n * d, queries.data());
        snap.query_ball_radius = cluster::PointBallRadius(queries);
      }

      if (need_grad) {
        SliceState& st = states[s];
        st.assignment = std::move(ig.grouping.assignment);
        st.counts = std::move(ig.grouping.counts);
        st.centroids = std::move(ig.grouping.centroids);
        st.a_tilde = std::move(a_tilde);
        st.v_tilde = std::move(ig.v_tilde);
      }
    }
  });

  ag::Variable result(out);
  if (need_grad) {
    ag::Function::Connect(
        std::make_shared<GroupAttentionFunction>(std::move(states), q.data(), scale,
                                                 execution_context_cell()),
        {q, k, v}, &result);
  }
  return result;
}

}  // namespace core
}  // namespace rita
