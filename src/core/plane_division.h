// Dynamic-programming plane division (Appendix A.3, Alg. 3): splits the
// {1 <= L <= Lmax, 1 <= N <= L} plane into rectangular sub-planes, fits a
// separate function per sub-plane, and provably minimises the total fitting
// error over all guillotine cuts of the considered grid (vertical cuts in L,
// then horizontal cuts in N inside each strip). Coordinates are compressed to
// the sampled L/N values, which preserves optimality over the samples.
#ifndef RITA_CORE_PLANE_DIVISION_H_
#define RITA_CORE_PLANE_DIVISION_H_

#include <vector>

#include "core/curve_fit.h"

namespace rita {
namespace core {

struct PlaneDivisionOptions {
  /// Sub-planes holding fewer samples are rejected (infinite cost in Alg. 3)
  /// so that no region is fit from a degenerate sample set.
  int64_t min_points_per_region = 6;
  /// Cap on the number of regions (keeps lookup cheap); the DP naturally
  /// stops splitting when fits no longer improve, this is a safety bound.
  int64_t max_regions = 16;
};

/// One rectangular sub-plane and its fitted function.
struct PlaneRegion {
  double length_lo = 0.0, length_hi = 0.0;  // (lo, hi] in L
  double groups_lo = 0.0, groups_hi = 0.0;  // (lo, hi] in N
  FittedFunction fit;
};

/// Result of the DP: regions tile the sampled plane.
struct PlaneDivision {
  std::vector<PlaneRegion> regions;
  double total_sse = 0.0;

  /// Predicts B at (L, N): the containing region's fit, or the nearest region
  /// when (L, N) falls outside every rectangle (extrapolation).
  double Predict(double length, double groups) const;
};

/// Runs Alg. 3 over the samples. Falls back to a single global fit when there
/// are too few samples to split.
PlaneDivision DividePlane(const std::vector<BatchSample>& samples,
                          const PlaneDivisionOptions& options = {});

}  // namespace core
}  // namespace rita

#endif  // RITA_CORE_PLANE_DIVISION_H_
