// Group attention (Sec. 4 of the paper): keys are clustered per head with the
// GPU-friendly k-means; attention scores are computed once per *group*
// (an n x N matrix instead of n x n); the group softmax (Eq. 3) weights each
// group by its member count and the embedding-aggregation step sums V inside
// each group, so the produced embeddings are *identical* to restoring the full
// attention matrix first (Lemma 3 / Appendix A.4) while using O(nN) memory and
// O(nNd) time (Alg. 1).
#ifndef RITA_CORE_GROUP_ATTENTION_H_
#define RITA_CORE_GROUP_ATTENTION_H_

#include <memory>
#include <vector>

#include "attention/attention.h"
#include "cluster/kmeans.h"
#include "core/grouping_snapshot.h"

namespace rita {
namespace core {

struct GroupAttentionOptions {
  /// Initial number of groups N. The adaptive scheduler shrinks this during
  /// training; set_num_groups() applies the update.
  int64_t num_groups = 64;
  /// Lloyd iterations per forward (the paper: a few suffice).
  int kmeans_iters = 2;
  /// k-means++ seeding (slower, better grouping; off by default).
  bool kmeanspp_init = false;
  /// Collect centroid/radius snapshots for the adaptive scheduler. Costs one
  /// O(n d) pass per head; disable for pure inference.
  bool collect_snapshots = true;
};

/// Group attention mechanism (drop-in replacement for VanillaAttention).
/// Reentrant: a Forward with an explicit ForwardState mutates nothing on the
/// mechanism, so one frozen instance serves concurrent callers.
class GroupAttentionMechanism : public attn::AttentionMechanism {
 public:
  GroupAttentionMechanism(int64_t head_dim, const GroupAttentionOptions& options,
                          Rng* rng);

  using attn::AttentionMechanism::Forward;
  ag::Variable Forward(const ag::Variable& q, const ag::Variable& k,
                       const ag::Variable& v, attn::ForwardState* state) override;

  attn::AttentionKind kind() const override { return attn::AttentionKind::kGroup; }
  int64_t ScoreMatrixElements(int64_t n) const override { return n * num_groups_; }

  int64_t num_groups() const { return num_groups_; }
  /// Applies a scheduler decision (clamped to >= 1). Not safe against
  /// concurrent Forward calls (the scheduler runs between epochs).
  void set_num_groups(int64_t n);

  /// Snapshots from the most recent *legacy* Forward (one per batch*head
  /// slice). Reentrant calls deliver snapshots to their state's sink instead.
  const std::vector<GroupingSnapshot>& last_snapshots() const { return snapshots_; }

  const GroupAttentionOptions& options() const { return options_; }

  /// Root of the counter-based per-slice RNG streams: slice s of stream f
  /// draws from ExecutionContext::SliceRng(seed(), f, s). Exposed so a
  /// weight-copied replica (rita::serve FrozenModel) can reproduce this
  /// mechanism's grouping exactly.
  uint64_t seed() const { return seed_; }
  void set_seed(uint64_t seed) { seed_ = seed; }

 protected:
  void InitDefaultState(attn::ForwardState* state) override {
    state->snapshots = options_.collect_snapshots ? &snapshots_ : nullptr;
  }

 private:
  int64_t head_dim_;
  GroupAttentionOptions options_;
  int64_t num_groups_;
  // Unlike a shared mutable Rng, counter-based streams keep concurrent slices
  // independent and make the grouping bit-identical no matter the pool width
  // or schedule.
  uint64_t seed_;
  std::vector<GroupingSnapshot> snapshots_;
};

}  // namespace core
}  // namespace rita

#endif  // RITA_CORE_GROUP_ATTENTION_H_
