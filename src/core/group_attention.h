// Group attention (Sec. 4 of the paper): keys are clustered per head with the
// GPU-friendly k-means; attention scores are computed once per *group*
// (an n x N matrix instead of n x n); the group softmax (Eq. 3) weights each
// group by its member count and the embedding-aggregation step sums V inside
// each group, so the produced embeddings are *identical* to restoring the full
// attention matrix first (Lemma 3 / Appendix A.4) while using O(nN) memory and
// O(nNd) time (Alg. 1).
#ifndef RITA_CORE_GROUP_ATTENTION_H_
#define RITA_CORE_GROUP_ATTENTION_H_

#include <memory>
#include <vector>

#include "attention/attention.h"
#include "cluster/kmeans.h"

namespace rita {
namespace core {

struct GroupAttentionOptions {
  /// Initial number of groups N. The adaptive scheduler shrinks this during
  /// training; set_num_groups() applies the update.
  int64_t num_groups = 64;
  /// Lloyd iterations per forward (the paper: a few suffice).
  int kmeans_iters = 2;
  /// k-means++ seeding (slower, better grouping; off by default).
  bool kmeanspp_init = false;
  /// Collect centroid/radius snapshots for the adaptive scheduler. Costs one
  /// O(n d) pass per head; disable for pure inference.
  bool collect_snapshots = true;
};

/// Grouping statistics of one (batch, head) slice from the latest forward
/// pass; consumed by the adaptive scheduler's merge test.
struct GroupingSnapshot {
  Tensor centroids;             // [N, d_head]
  std::vector<int64_t> counts;  // [N]
  std::vector<float> radii;     // max_{x in cluster} |x - c| per cluster
  float key_ball_radius = 0.0f;   // max_i |k_i| (the paper's literal R)
  // max_i |q_i|: the radius the Lemma 1 proof actually bounds with (the
  // exponent is q_i . (k~ - k)); with the scaled dot product the effective
  // radius becomes |q|_max / sqrt(d_head), which the scheduler uses.
  float query_ball_radius = 0.0f;
};

/// Group attention mechanism (drop-in replacement for VanillaAttention).
class GroupAttentionMechanism : public attn::AttentionMechanism {
 public:
  GroupAttentionMechanism(int64_t head_dim, const GroupAttentionOptions& options,
                          Rng* rng);

  ag::Variable Forward(const ag::Variable& q, const ag::Variable& k,
                       const ag::Variable& v) override;

  attn::AttentionKind kind() const override { return attn::AttentionKind::kGroup; }
  int64_t ScoreMatrixElements(int64_t n) const override { return n * num_groups_; }

  int64_t num_groups() const { return num_groups_; }
  /// Applies a scheduler decision (clamped to >= 1).
  void set_num_groups(int64_t n);

  /// Snapshots from the most recent Forward (one per batch*head slice).
  const std::vector<GroupingSnapshot>& last_snapshots() const { return snapshots_; }

  const GroupAttentionOptions& options() const { return options_; }

 private:
  int64_t head_dim_;
  GroupAttentionOptions options_;
  int64_t num_groups_;
  // Root of the counter-based per-slice RNG streams: slice s of forward call
  // f draws from ExecutionContext::SliceRng(seed_, f, s). Unlike a shared
  // mutable Rng, this keeps concurrent slices independent and makes the
  // grouping bit-identical no matter the pool width or schedule.
  uint64_t seed_;
  uint64_t forward_calls_ = 0;
  std::vector<GroupingSnapshot> snapshots_;
};

}  // namespace core
}  // namespace rita

#endif  // RITA_CORE_GROUP_ATTENTION_H_
