// Group attention (Sec. 4 of the paper): keys are clustered per head with the
// GPU-friendly k-means; attention scores are computed once per *group*
// (an n x N matrix instead of n x n); the group softmax (Eq. 3) weights each
// group by its member count and the embedding-aggregation step sums V inside
// each group, so the produced embeddings are *identical* to restoring the full
// attention matrix first (Lemma 3 / Appendix A.4) while using O(nN) memory and
// O(nNd) time (Alg. 1).
#ifndef RITA_CORE_GROUP_ATTENTION_H_
#define RITA_CORE_GROUP_ATTENTION_H_

#include <memory>
#include <vector>

#include "attention/attention.h"
#include "cluster/kmeans.h"
#include "core/grouping_snapshot.h"

namespace rita {
namespace core {

/// One (batch*head) slice's grouping state for the inference fast path:
/// everything the fused score->softmax->weighted-sum kernel needs. Produced
/// by GroupSliceForInference, consumed by GroupAttendRows — both the
/// sequential forward and the dataflow graph lowering call exactly these two
/// helpers, so the two paths are bit-identical by construction.
struct InferenceGrouping {
  cluster::KMeansResult grouping;  // centroids R, assignment, counts
  Tensor v_tilde;                  // V~: [ng, d] per-group value sums
  std::vector<float> weights;      // [ng] group sizes (Eq. 3 denominators)

  int64_t num_groups() const { return grouping.num_clusters(); }
};

/// Groups one slice's keys and aggregates its values (Alg. 1 steps 1-2).
/// `keys` is the slice's [n, d] key matrix; `v_slice` points at its n*d
/// values. k-means runs with `km` as given — the graph path sets
/// km.parallel=true to spread Lloyd iterations across the pool, which is
/// bit-identical to the sequential km.parallel=false by RunKMeans' fixed
/// reduction-block contract.
InferenceGrouping GroupSliceForInference(const Tensor& keys, const float* v_slice,
                                         const cluster::KMeansOptions& km, Rng* rng,
                                         ExecutionContext* context);

/// Scores `rows` query rows against the grouping and writes the attended
/// output rows (Alg. 1 steps 3-5 via the fused kernel). Row-tiling is exact:
/// every output row is produced by the same per-row kernel regardless of how
/// the [0, n) range is split, so per-tile graph nodes match the one-shot call
/// bit for bit.
void GroupAttendRows(const float* q_rows, const InferenceGrouping& grouping,
                     float* out_rows, int64_t rows, int64_t d, float scale,
                     ScratchArena::Lease* scratch);

struct GroupAttentionOptions {
  /// Initial number of groups N. The adaptive scheduler shrinks this during
  /// training; set_num_groups() applies the update.
  int64_t num_groups = 64;
  /// Lloyd iterations per forward (the paper: a few suffice).
  int kmeans_iters = 2;
  /// k-means++ seeding (slower, better grouping; off by default).
  bool kmeanspp_init = false;
  /// Collect centroid/radius snapshots for the adaptive scheduler. Costs one
  /// O(n d) pass per head; disable for pure inference.
  bool collect_snapshots = true;
};

/// Group attention mechanism (drop-in replacement for VanillaAttention).
/// Reentrant: a Forward with an explicit ForwardState mutates nothing on the
/// mechanism, so one frozen instance serves concurrent callers.
class GroupAttentionMechanism : public attn::AttentionMechanism {
 public:
  GroupAttentionMechanism(int64_t head_dim, const GroupAttentionOptions& options,
                          Rng* rng);

  using attn::AttentionMechanism::Forward;
  ag::Variable Forward(const ag::Variable& q, const ag::Variable& k,
                       const ag::Variable& v, attn::ForwardState* state) override;

  attn::AttentionKind kind() const override { return attn::AttentionKind::kGroup; }
  int64_t ScoreMatrixElements(int64_t n) const override { return n * num_groups_; }

  int64_t num_groups() const { return num_groups_; }
  /// Applies a scheduler decision (clamped to >= 1). Not safe against
  /// concurrent Forward calls (the scheduler runs between epochs).
  void set_num_groups(int64_t n);

  /// Snapshots from the most recent *legacy* Forward (one per batch*head
  /// slice). Reentrant calls deliver snapshots to their state's sink instead.
  const std::vector<GroupingSnapshot>& last_snapshots() const { return snapshots_; }

  const GroupAttentionOptions& options() const { return options_; }

  /// Root of the counter-based per-slice RNG streams: slice s of stream f
  /// draws from ExecutionContext::SliceRng(seed(), f, s). Exposed so a
  /// weight-copied replica (rita::serve FrozenModel) can reproduce this
  /// mechanism's grouping exactly.
  uint64_t seed() const { return seed_; }
  void set_seed(uint64_t seed) { seed_ = seed; }

  /// The k-means configuration Forward uses for an n-token slice (with
  /// km.parallel=false — the slice loop is the parallel grain there). The
  /// graph lowering reuses this so both paths group identically.
  cluster::KMeansOptions InferenceKMeans(int64_t n) const;

 protected:
  void InitDefaultState(attn::ForwardState* state) override {
    state->snapshots = options_.collect_snapshots ? &snapshots_ : nullptr;
  }

 private:
  int64_t head_dim_;
  GroupAttentionOptions options_;
  int64_t num_groups_;
  // Unlike a shared mutable Rng, counter-based streams keep concurrent slices
  // independent and make the grouping bit-identical no matter the pool width
  // or schedule.
  uint64_t seed_;
  std::vector<GroupingSnapshot> snapshots_;
};

}  // namespace core
}  // namespace rita

#endif  // RITA_CORE_GROUP_ATTENTION_H_
