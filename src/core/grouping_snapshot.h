// Grouping statistics emitted by a group-attention forward pass. Lives in its
// own header (depending only on the tensor substrate) so the attention-layer
// ForwardState can name the type without a core <-> attn include cycle.
#ifndef RITA_CORE_GROUPING_SNAPSHOT_H_
#define RITA_CORE_GROUPING_SNAPSHOT_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace rita {
namespace core {

/// Grouping statistics of one (batch, head) slice from a forward pass;
/// consumed by the adaptive scheduler's merge test.
struct GroupingSnapshot {
  Tensor centroids;             // [N, d_head]
  std::vector<int64_t> counts;  // [N]
  std::vector<float> radii;     // max_{x in cluster} |x - c| per cluster
  float key_ball_radius = 0.0f;   // max_i |k_i| (the paper's literal R)
  // max_i |q_i|: the radius the Lemma 1 proof actually bounds with (the
  // exponent is q_i . (k~ - k)); with the scaled dot product the effective
  // radius becomes |q|_max / sqrt(d_head), which the scheduler uses.
  float query_ball_radius = 0.0f;
};

}  // namespace core
}  // namespace rita

#endif  // RITA_CORE_GROUPING_SNAPSHOT_H_
