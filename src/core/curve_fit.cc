#include "core/curve_fit.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace rita {
namespace core {

std::vector<FitFamily> AllFitFamilies() {
  return {FitFamily::kInverseAffine, FitFamily::kInverseLength,
          FitFamily::kInverseQuadratic, FitFamily::kReciprocalAffine};
}

const char* FitFamilyName(FitFamily family) {
  switch (family) {
    case FitFamily::kInverseAffine:
      return "a + b/L + c/N + d/(LN)";
    case FitFamily::kInverseLength:
      return "a + b/L + c/(LN)";
    case FitFamily::kInverseQuadratic:
      return "a + b/(LN) + c/(LN^2)";
    case FitFamily::kReciprocalAffine:
      return "1/(a + bL + cN + dLN)";
  }
  return "?";
}

namespace {
// Families fit against a transformed target; kReciprocalAffine fits 1/B.
bool IsReciprocalFamily(FitFamily family) {
  return family == FitFamily::kReciprocalAffine;
}
}  // namespace

std::vector<double> FitBasis(FitFamily family, double length, double groups) {
  const double l = std::max(1.0, length);
  const double n = std::max(1.0, groups);
  switch (family) {
    case FitFamily::kInverseAffine:
      return {1.0, 1.0 / l, 1.0 / n, 1.0 / (l * n)};
    case FitFamily::kInverseLength:
      return {1.0, 1.0 / l, 1.0 / (l * n)};
    case FitFamily::kInverseQuadratic:
      return {1.0, 1.0 / (l * n), 1.0 / (l * n * n)};
    case FitFamily::kReciprocalAffine:
      return {1.0, l, n, l * n};
  }
  return {1.0};
}

double FittedFunction::Predict(double length, double groups) const {
  const std::vector<double> basis = FitBasis(family, length, groups);
  RITA_CHECK_EQ(basis.size(), coeffs.size());
  double out = 0.0;
  for (size_t i = 0; i < basis.size(); ++i) out += coeffs[i] * basis[i];
  if (family == FitFamily::kReciprocalAffine) {
    // Fitted in 1/B space; guard against non-positive denominators when
    // extrapolating far outside the calibration region.
    return out > 1e-12 ? 1.0 / out : 0.0;
  }
  return out;
}

bool SolveLinearSystem(std::vector<std::vector<double>> a, std::vector<double> b,
                       std::vector<double>* x) {
  const size_t n = a.size();
  RITA_CHECK_EQ(b.size(), n);
  for (size_t col = 0; col < n; ++col) {
    // Partial pivot.
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (std::fabs(a[pivot][col]) < 1e-12) return false;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    // Eliminate below.
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = a[r][col] / a[col][col];
      for (size_t c = col; c < n; ++c) a[r][c] -= factor * a[col][c];
      b[r] -= factor * b[col];
    }
  }
  x->assign(n, 0.0);
  for (size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (size_t c = ri + 1; c < n; ++c) acc -= a[ri][c] * (*x)[c];
    (*x)[ri] = acc / a[ri][ri];
  }
  return true;
}

FittedFunction FitFamilyLeastSquares(FitFamily family,
                                     const std::vector<BatchSample>& samples) {
  RITA_CHECK(!samples.empty());
  const size_t k = FitBasis(family, 1.0, 1.0).size();

  // Normal equations: (Phi^T Phi) w = Phi^T y, with y transformed for
  // reciprocal families.
  const bool reciprocal = IsReciprocalFamily(family);
  std::vector<std::vector<double>> ata(k, std::vector<double>(k, 0.0));
  std::vector<double> atb(k, 0.0);
  for (const BatchSample& s : samples) {
    const std::vector<double> phi = FitBasis(family, s.length, s.groups);
    const double target = reciprocal ? 1.0 / std::max(1.0, s.batch) : s.batch;
    for (size_t i = 0; i < k; ++i) {
      atb[i] += phi[i] * target;
      for (size_t j = 0; j < k; ++j) ata[i][j] += phi[i] * phi[j];
    }
  }
  // Relative Tikhonov ridge keeps near-collinear bases solvable without
  // drowning small-magnitude basis columns (1/(LN) entries are ~1e-6).
  for (size_t i = 0; i < k; ++i) ata[i][i] *= 1.0 + 1e-10;

  FittedFunction fit;
  fit.family = family;
  if (!SolveLinearSystem(ata, atb, &fit.coeffs)) {
    fit.coeffs.assign(k, 0.0);
    fit.sse = std::numeric_limits<double>::max();
    return fit;
  }
  fit.sse = 0.0;
  for (const BatchSample& s : samples) {
    const double err = fit.Predict(s.length, s.groups) - s.batch;
    fit.sse += err * err;
  }
  return fit;
}

FittedFunction FitBest(const std::vector<BatchSample>& samples) {
  FittedFunction best;
  bool first = true;
  for (FitFamily family : AllFitFamilies()) {
    FittedFunction fit = FitFamilyLeastSquares(family, samples);
    if (first || fit.sse < best.sse) {
      best = fit;
      first = false;
    }
  }
  return best;
}

}  // namespace core
}  // namespace rita
