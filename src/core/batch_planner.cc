#include "core/batch_planner.h"

#include <algorithm>
#include <cmath>

namespace rita {
namespace core {

BatchPlanner::BatchPlanner(const MemoryModel& model, const BatchPlannerOptions& options)
    : model_(model), options_(options) {
  RITA_CHECK_GE(options_.max_length, model_.shape().window);
  RITA_CHECK_GT(options_.num_samples, 0);
}

// Alg. 2: classic lo/hi binary search over feasible batch size.
int64_t MaxFeasibleBatch(const MemoryModel& model, int64_t length, int64_t groups,
                         double fraction, int64_t max_batch) {
  int64_t lo = 1, hi = max_batch, best = 1;
  while (lo <= hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    if (model.Fits(mid, length, groups, fraction)) {
      best = mid;
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return best;
}

int64_t BatchPlanner::ProbeBatchSize(int64_t length, int64_t groups) const {
  RITA_CHECK(model_.Fits(1, length, groups, options_.memory_fraction))
      << "even batch size 1 exceeds the memory budget at length " << length;
  return MaxFeasibleBatch(model_, length, groups, options_.memory_fraction,
                          options_.max_batch);
}

void BatchPlanner::Calibrate(Rng* rng) {
  samples_.clear();
  samples_.reserve(options_.num_samples);
  const int64_t min_l = model_.shape().window;
  for (int64_t i = 0; i < options_.num_samples; ++i) {
    // Integral points from the plane {min_l <= L <= Lmax, 1 <= N <= tokens(L)}.
    const int64_t length = min_l + rng->UniformInt(options_.max_length - min_l + 1);
    const int64_t tokens = model_.shape().Tokens(length);
    const int64_t groups = 1 + rng->UniformInt(std::max<int64_t>(1, tokens));
    BatchSample s;
    s.length = static_cast<double>(length);
    s.groups = static_cast<double>(groups);
    s.batch = static_cast<double>(ProbeBatchSize(length, groups));
    samples_.push_back(s);
  }
  division_ = DividePlane(samples_, options_.plane);
  calibrated_ = true;
}

int64_t BatchPlanner::PredictBatchSize(int64_t length, int64_t groups) const {
  RITA_CHECK(calibrated_) << "Calibrate() before PredictBatchSize()";
  const double raw = division_.Predict(static_cast<double>(length),
                                       static_cast<double>(groups));
  int64_t predicted = std::max<int64_t>(1, static_cast<int64_t>(std::floor(raw)));
  predicted = std::min(predicted, options_.max_batch);
  // OOM guard: a fit overshoot is clipped to the exact feasible maximum below
  // the prediction (cheap: the oracle is the analytic memory model).
  if (!model_.Fits(predicted, length, groups, options_.memory_fraction)) {
    predicted = MaxFeasibleBatch(model_, length, groups, options_.memory_fraction,
                                 predicted);
  }
  return std::max<int64_t>(1, predicted);
}

}  // namespace core
}  // namespace rita
