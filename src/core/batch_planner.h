// Batch-size planner (Sec. 5.2, Appendix A.3): binary-searches the maximal
// batch size that stays under 90% of device memory for sampled (L, N) pairs
// (Alg. 2), then learns B = f(L, N) with per-sub-plane curve fits chosen by
// the DP plane division (Alg. 3) so training can pick a batch size instantly
// whenever the adaptive scheduler changes N.
#ifndef RITA_CORE_BATCH_PLANNER_H_
#define RITA_CORE_BATCH_PLANNER_H_

#include <vector>

#include "core/memory_model.h"
#include "core/plane_division.h"
#include "util/rng.h"

namespace rita {
namespace core {

struct BatchPlannerOptions {
  /// User-defined maximal raw timeseries length L_max.
  int64_t max_length = 10000;
  /// Number of (L_i, N_i) calibration samples from {1<=L<=Lmax, 1<=N<=L}.
  int64_t num_samples = 48;
  /// Alg. 2's memory threshold (0.9 = stay under 90% of capacity).
  double memory_fraction = 0.9;
  /// Upper bound of the binary search.
  int64_t max_batch = 1 << 16;
  PlaneDivisionOptions plane;
};

/// Learns and serves the batch-size prediction function.
class BatchPlanner {
 public:
  BatchPlanner(const MemoryModel& model, const BatchPlannerOptions& options);

  /// Alg. 2: binary search for the largest batch that fits under the memory
  /// fraction at (length, groups). Always >= 1 (a single sample is assumed to
  /// fit; asserted).
  int64_t ProbeBatchSize(int64_t length, int64_t groups) const;

  /// Samples (L_i, N_i) pairs, probes ground-truth batch sizes, and fits the
  /// plane division. Must be called before PredictBatchSize.
  void Calibrate(Rng* rng);

  /// Fast prediction from the fitted plane (clamped to >= 1). Conservative:
  /// the prediction is validated against the memory model and halved until it
  /// fits, so a fit overshoot can never OOM.
  int64_t PredictBatchSize(int64_t length, int64_t groups) const;

  bool calibrated() const { return calibrated_; }
  const PlaneDivision& division() const { return division_; }
  const std::vector<BatchSample>& calibration_samples() const { return samples_; }

 private:
  MemoryModel model_;
  BatchPlannerOptions options_;
  bool calibrated_ = false;
  std::vector<BatchSample> samples_;
  PlaneDivision division_;
};

}  // namespace core
}  // namespace rita

#endif  // RITA_CORE_BATCH_PLANNER_H_
