// Batch-size planner (Sec. 5.2, Appendix A.3): binary-searches the maximal
// batch size that stays under 90% of device memory for sampled (L, N) pairs
// (Alg. 2), then learns B = f(L, N) with per-sub-plane curve fits chosen by
// the DP plane division (Alg. 3) so training can pick a batch size instantly
// whenever the adaptive scheduler changes N.
#ifndef RITA_CORE_BATCH_PLANNER_H_
#define RITA_CORE_BATCH_PLANNER_H_

#include <vector>

#include "core/memory_model.h"
#include "core/plane_division.h"
#include "util/rng.h"

namespace rita {
namespace core {

/// Measured telemetry of one executed micro-batch — the feedback signal a
/// live-telemetry planner recalibrates from. Emitted by the serving executor
/// after every forward; `task` uses the serve::ServeTask encoding (kept as a
/// plain integer so core stays independent of the serving layer).
struct BatchTelemetry {
  int64_t model_id = 0;
  int64_t task = 0;
  int64_t length = 0;           // raw series length of the coalescing bucket
  int64_t groups = 0;           // carrier model's group count (0 = non-group)
  int64_t batch = 0;            // micro-batch size that actually ran
  double compute_ms = 0.0;      // measured forward wall time
  int64_t peak_rss_bytes = 0;   // process RSS probed after the forward; 0 = n/a
};

/// Common face of every batch-size planner the scheduler can consult: the
/// analytic BatchPlanner below (plans from the memory model alone, ignores
/// feedback) and serve::AdaptivePlanner (recalibrates from BatchTelemetry).
class PlannerInterface {
 public:
  virtual ~PlannerInterface() = default;

  /// Micro-batch budget for series of `length` on `groups` groups; >= 1.
  virtual int64_t PredictBatchSize(int64_t length, int64_t groups) const = 0;

  /// Model/task-aware refinement used by the serving scheduler. Planners
  /// without per-model state fall through to PredictBatchSize.
  virtual int64_t PlanBatch(int64_t model_id, int64_t task, int64_t length,
                            int64_t groups) const {
    (void)model_id;
    (void)task;
    return PredictBatchSize(length, groups);
  }

  /// False until the planner can answer PredictBatchSize.
  virtual bool calibrated() const = 0;

  /// Feedback hook: the executor reports every finished batch here. Analytic
  /// planners ignore it; adaptive planners must be safe to call concurrently
  /// with PlanBatch/EstimateComputeMs.
  virtual void Observe(const BatchTelemetry& sample) { (void)sample; }

  /// Current latency estimate (ms) for a batch of `batch` requests at
  /// (model, task, length); <= 0 when the planner has no estimate yet.
  /// Admission uses batch == 1 to shed requests whose deadline already
  /// cannot be met by a hypothetical immediate solo forward.
  virtual double EstimateComputeMs(int64_t model_id, int64_t task,
                                   int64_t length, int64_t batch) const {
    (void)model_id;
    (void)task;
    (void)length;
    (void)batch;
    return 0.0;
  }
};

/// Alg. 2's binary search as a free function: the largest batch that fits
/// under `fraction` of `model`'s capacity at (length, groups), capped at
/// `max_batch`. Both the analytic planner's probe and the adaptive planner's
/// safety ceiling are instances of this search (over different memory
/// accountings).
int64_t MaxFeasibleBatch(const MemoryModel& model, int64_t length, int64_t groups,
                         double fraction, int64_t max_batch);

struct BatchPlannerOptions {
  /// User-defined maximal raw timeseries length L_max.
  int64_t max_length = 10000;
  /// Number of (L_i, N_i) calibration samples from {1<=L<=Lmax, 1<=N<=L}.
  int64_t num_samples = 48;
  /// Alg. 2's memory threshold (0.9 = stay under 90% of capacity).
  double memory_fraction = 0.9;
  /// Upper bound of the binary search.
  int64_t max_batch = 1 << 16;
  PlaneDivisionOptions plane;
};

/// Learns and serves the analytic batch-size prediction function.
class BatchPlanner : public PlannerInterface {
 public:
  BatchPlanner(const MemoryModel& model, const BatchPlannerOptions& options);

  /// Alg. 2: binary search for the largest batch that fits under the memory
  /// fraction at (length, groups). Always >= 1 (a single sample is assumed to
  /// fit; asserted).
  int64_t ProbeBatchSize(int64_t length, int64_t groups) const;

  /// Samples (L_i, N_i) pairs, probes ground-truth batch sizes, and fits the
  /// plane division. Must be called before PredictBatchSize.
  void Calibrate(Rng* rng);

  /// Fast prediction from the fitted plane (clamped to >= 1). Conservative:
  /// the prediction is validated against the memory model and halved until it
  /// fits, so a fit overshoot can never OOM.
  int64_t PredictBatchSize(int64_t length, int64_t groups) const override;

  bool calibrated() const override { return calibrated_; }
  const MemoryModel& memory_model() const { return model_; }
  const BatchPlannerOptions& options() const { return options_; }
  const PlaneDivision& division() const { return division_; }
  const std::vector<BatchSample>& calibration_samples() const { return samples_; }

 private:
  MemoryModel model_;
  BatchPlannerOptions options_;
  bool calibrated_ = false;
  std::vector<BatchSample> samples_;
  PlaneDivision division_;
};

}  // namespace core
}  // namespace rita

#endif  // RITA_CORE_BATCH_PLANNER_H_
