// Factory assembling any of the four attention mechanisms from a single
// config — the switch point the benchmarks use to compare methods.
#ifndef RITA_CORE_ATTENTION_FACTORY_H_
#define RITA_CORE_ATTENTION_FACTORY_H_

#include <memory>

#include "attention/attention.h"
#include "core/group_attention.h"

namespace rita {
namespace core {

/// Everything needed to build one per-head attention mechanism.
struct AttentionOptions {
  attn::AttentionKind kind = attn::AttentionKind::kGroup;
  float dropout = 0.1f;             // vanilla only (probs dropout)
  GroupAttentionOptions group;      // group attention
  int64_t performer_features = 32;  // performer
  int64_t linformer_k = 128;        // linformer projection dim
  int64_t seq_len = 0;              // required by linformer (tokens incl. CLS)
};

std::unique_ptr<attn::AttentionMechanism> CreateAttentionMechanism(
    int64_t head_dim, const AttentionOptions& options, Rng* rng);

}  // namespace core
}  // namespace rita

#endif  // RITA_CORE_ATTENTION_FACTORY_H_
