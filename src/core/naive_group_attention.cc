#include "core/naive_group_attention.h"

#include <cmath>

#include "autograd/function.h"
#include "linalg/kernels/kernels.h"
#include "tensor/tensor_ops.h"

namespace rita {
namespace core {

namespace {

// Backward of softmax(Q K~^T / sqrt(d)) V where K~_x = centroid(g(x)):
// standard vanilla-attention backward over the *restored* matrices, with
// dK routed through the centroid mean. Quadratic in n by construction.
class NaiveGroupAttentionFunction : public ag::Function {
 public:
  NaiveGroupAttentionFunction(Tensor probs, Tensor q, Tensor k_restored, Tensor v,
                              std::vector<std::vector<int64_t>> assignments,
                              std::vector<std::vector<int64_t>> counts, float scale,
                              std::shared_ptr<ExecutionContext*> context_cell)
      : probs_(std::move(probs)),
        q_(std::move(q)),
        k_restored_(std::move(k_restored)),
        v_(std::move(v)),
        assignments_(std::move(assignments)),
        counts_(std::move(counts)),
        scale_(scale),
        context_cell_(std::move(context_cell)) {}

  std::string name() const override { return "NaiveGroupAttention"; }

  std::vector<Tensor> Backward(const Tensor& g) override {
    // Re-read the shared cell at backward time (see GroupAttention).
    ExecutionContext* context =
        attn::AttentionMechanism::ResolveExecutionContext(context_cell_);
    const int64_t bh = q_.size(0), n = q_.size(1), d = q_.size(2);
    Tensor dq(q_.shape());
    Tensor dk(q_.shape());
    Tensor dv(q_.shape());
    // Slices write disjoint [n, d] blocks; the quadratic temporaries come
    // from the arena so shards recycle them.
    context->ParallelFor(0, bh, [&](int64_t s0, int64_t s1) {
      ScratchArena::Lease scratch = context->arena()->Acquire();
      for (int64_t s = s0; s < s1; ++s) {
        scratch.Reset();
        const float* g_s = g.data() + s * n * d;
        const float* p_s = probs_.data() + s * n * n;
        const float* q_s = q_.data() + s * n * d;
        const float* kr_s = k_restored_.data() + s * n * d;
        const float* v_s = v_.data() + s * n * d;

        // dV = P^T dO
        ops::Gemm2D(p_s, g_s, dv.data() + s * n * d, n, d, n, true, false,
                    /*parallel=*/false);
        // dP = dO V^T ; dS = P * (dP - rowsum(dP * P)) ; S = scaled scores.
        float* dp = scratch.Floats(n * n);
        ops::Gemm2D(g_s, v_s, dp, n, n, d, false, true, /*parallel=*/false);
        float* ds = scratch.Floats(n * n);
        for (int64_t i = 0; i < n; ++i) {
          const float* prow = p_s + i * n;
          const float* dprow = dp + i * n;
          float* dsrow = ds + i * n;
          float t = 0.0f;
          for (int64_t j = 0; j < n; ++j) t += prow[j] * dprow[j];
          for (int64_t j = 0; j < n; ++j) dsrow[j] = prow[j] * (dprow[j] - t);
        }
        // dQ = scale * dS K~ ; dK~ = scale * dS^T Q ; dK_x = dK~ mean-routed.
        float* dq_s = dq.data() + s * n * d;
        ops::Gemm2D(ds, kr_s, dq_s, n, d, n, false, false, /*parallel=*/false);
        for (int64_t i = 0; i < n * d; ++i) dq_s[i] *= scale_;

        float* dkr = scratch.Floats(n * d);
        ops::Gemm2D(ds, q_s, dkr, n, d, n, true, false, /*parallel=*/false);
        // Sum the restored-key grads per group, then distribute /count.
        const auto& assign = assignments_[s];
        const auto& count = counts_[s];
        const int64_t ng = static_cast<int64_t>(count.size());
        float* group_grad = scratch.Floats(ng * d);
        std::fill(group_grad, group_grad + ng * d, 0.0f);
        for (int64_t x = 0; x < n; ++x) {
          float* dst = group_grad + assign[x] * d;
          const float* src = dkr + x * d;
          for (int64_t j = 0; j < d; ++j) dst[j] += src[j];
        }
        float* dk_s = dk.data() + s * n * d;
        for (int64_t x = 0; x < n; ++x) {
          const int64_t c = assign[x];
          const float inv = scale_ / static_cast<float>(count[c]);
          const float* src = group_grad + c * d;
          float* dst = dk_s + x * d;
          for (int64_t j = 0; j < d; ++j) dst[j] = src[j] * inv;
        }
      }
    });
    return {dq, dk, dv};
  }

 private:
  Tensor probs_;       // [BH, n, n] -- the restored quadratic object
  Tensor q_, k_restored_, v_;
  std::vector<std::vector<int64_t>> assignments_;
  std::vector<std::vector<int64_t>> counts_;
  float scale_;
  std::shared_ptr<ExecutionContext*> context_cell_;
};

}  // namespace

NaiveGroupAttention::NaiveGroupAttention(int64_t head_dim,
                                         const GroupAttentionOptions& options, Rng* rng)
    : head_dim_(head_dim),
      options_(options),
      num_groups_(options.num_groups),
      seed_(rng->NextU64()) {}

ag::Variable NaiveGroupAttention::Forward(const ag::Variable& q, const ag::Variable& k,
                                          const ag::Variable& v,
                                          attn::ForwardState* state) {
  RITA_CHECK_EQ(q.size(2), head_dim_);
  const int64_t bh = q.size(0), n = q.size(1), d = q.size(2);
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));

  cluster::KMeansOptions km;
  km.num_clusters = std::min<int64_t>(num_groups_, n);
  km.max_iters = options_.kmeans_iters;
  km.kmeanspp_init = options_.kmeanspp_init;
  // The slice loop is the parallel grain (see GroupAttentionMechanism).
  km.parallel = false;

  Tensor out({bh, n, d});
  Tensor probs({bh, n, n});      // quadratic: the object Alg. 1 avoids
  Tensor k_restored({bh, n, d});
  std::vector<std::vector<int64_t>> assignments(bh);
  std::vector<std::vector<int64_t>> counts(bh);

  const float* pq = q.data().data();
  const float* pk = k.data().data();
  const float* pv = v.data().data();

  ExecutionContext* context = ResolveContext(*state);
  const uint64_t stream = state->DrawStream();

  // Per-slice restore-then-softmax; slices are independent (own RNG stream,
  // disjoint output blocks) so the loop shards across the pool.
  context->ParallelFor(0, bh, [&](int64_t s0, int64_t s1) {
    for (int64_t s = s0; s < s1; ++s) {
      Rng slice_rng = ExecutionContext::SliceRng(seed_, stream, state->SliceKey(s));
      Tensor keys({n, d});
      std::copy(pk + s * n * d, pk + (s + 1) * n * d, keys.data());
      cluster::KMeansResult grouping = cluster::RunKMeans(keys, km, &slice_rng, context);

      // Restore the effective keys: K~_x = centroid(g(x)).
      float* kr_s = k_restored.data() + s * n * d;
      for (int64_t x = 0; x < n; ++x) {
        const float* c = grouping.centroids.data() + grouping.assignment[x] * d;
        std::copy(c, c + d, kr_s + x * d);
      }

      // Full scores + softmax + value mix: exactly vanilla attention on K~.
      // Scores land directly in this slice's probs block and the softmax runs
      // in place, so the quadratic object is materialised exactly once.
      float* p_s = probs.data() + s * n * n;
      ops::Gemm2D(pq + s * n * d, kr_s, p_s, n, n, d, false, true,
                  /*parallel=*/false);
      kernels::FusedSoftmaxRows(p_s, p_s, n, n, scale);
      ops::Gemm2D(p_s, pv + s * n * d, out.data() + s * n * d, n, d, n, false,
                  false, /*parallel=*/false);

      assignments[s] = std::move(grouping.assignment);
      counts[s] = std::move(grouping.counts);
    }
  });

  ag::Variable result(out);
  ag::Function::Connect(std::make_shared<NaiveGroupAttentionFunction>(
                            probs, q.data(), k_restored, v.data(),
                            std::move(assignments), std::move(counts), scale,
                            execution_context_cell()),
                        {q, k, v}, &result);
  return result;
}

}  // namespace core
}  // namespace rita
