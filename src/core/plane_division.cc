#include "core/plane_division.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace rita {
namespace core {

namespace {

constexpr double kInf = std::numeric_limits<double>::max() / 4;

// Cost of fitting one region, Alg. 3's COST(S): infinite when S is too small
// to fit responsibly, else the best family's SSE.
double RegionCost(const std::vector<BatchSample>& samples,
                  const std::vector<int>& member, int64_t min_points,
                  FittedFunction* fit_out) {
  std::vector<BatchSample> subset;
  for (int idx : member) subset.push_back(samples[idx]);
  if (static_cast<int64_t>(subset.size()) < min_points) return kInf;
  FittedFunction fit = FitBest(subset);
  if (fit_out != nullptr) *fit_out = fit;
  return fit.sse;
}

// Optimal horizontal (N-axis) division of one vertical strip; returns the
// regions appended to `out`. Implements the inner DP of Alg. 3 (g(n)).
double DivideStrip(const std::vector<BatchSample>& samples,
                   const std::vector<int>& strip_members, double length_lo,
                   double length_hi, int64_t min_points,
                   std::vector<PlaneRegion>* out) {
  // Distinct N cut positions inside the strip.
  std::vector<double> ncuts;
  for (int idx : strip_members) ncuts.push_back(samples[idx].groups);
  std::sort(ncuts.begin(), ncuts.end());
  ncuts.erase(std::unique(ncuts.begin(), ncuts.end()), ncuts.end());
  const size_t r = ncuts.size();
  if (r == 0) return 0.0;

  // g[m]: best cost covering N in (0, ncuts[m-1]]; parent for reconstruction.
  std::vector<double> g(r + 1, kInf);
  std::vector<size_t> parent(r + 1, 0);
  std::vector<FittedFunction> fit_of(r + 1);
  g[0] = 0.0;
  for (size_t m = 1; m <= r; ++m) {
    for (size_t q = 0; q < m; ++q) {
      if (g[q] >= kInf) continue;
      const double n_lo = (q == 0) ? 0.0 : ncuts[q - 1];
      const double n_hi = ncuts[m - 1];
      std::vector<int> band;
      for (int idx : strip_members) {
        const double nv = samples[idx].groups;
        if (nv > n_lo && nv <= n_hi) band.push_back(idx);
      }
      FittedFunction fit;
      const double cost = RegionCost(samples, band, min_points, &fit);
      if (cost >= kInf) continue;
      if (g[q] + cost < g[m]) {
        g[m] = g[q] + cost;
        parent[m] = q;
        fit_of[m] = fit;
      }
    }
  }
  if (g[r] >= kInf) return kInf;

  // Reconstruct bands.
  std::vector<size_t> cuts;
  for (size_t m = r; m > 0; m = parent[m]) cuts.push_back(m);
  std::reverse(cuts.begin(), cuts.end());
  size_t prev = 0;
  for (size_t m : cuts) {
    PlaneRegion region;
    region.length_lo = length_lo;
    region.length_hi = length_hi;
    region.groups_lo = (prev == 0) ? 0.0 : ncuts[prev - 1];
    region.groups_hi = ncuts[m - 1];
    region.fit = fit_of[m];
    out->push_back(region);
    prev = m;
  }
  return g[r];
}

}  // namespace

double PlaneDivision::Predict(double length, double groups) const {
  RITA_CHECK(!regions.empty());
  // Containing region first.
  for (const PlaneRegion& r : regions) {
    if (length > r.length_lo && length <= r.length_hi && groups > r.groups_lo &&
        groups <= r.groups_hi) {
      return r.fit.Predict(length, groups);
    }
  }
  // Extrapolate from the nearest region (rectangle distance).
  const PlaneRegion* best = &regions[0];
  double best_d = std::numeric_limits<double>::max();
  for (const PlaneRegion& r : regions) {
    const double dl = std::max({r.length_lo - length, 0.0, length - r.length_hi});
    const double dn = std::max({r.groups_lo - groups, 0.0, groups - r.groups_hi});
    const double d = dl * dl + dn * dn;
    if (d < best_d) {
      best_d = d;
      best = &r;
    }
  }
  return best->fit.Predict(length, groups);
}

PlaneDivision DividePlane(const std::vector<BatchSample>& samples,
                          const PlaneDivisionOptions& options) {
  RITA_CHECK(!samples.empty());
  int64_t min_points = std::max<int64_t>(1, options.min_points_per_region);

  for (;;) {
    PlaneDivision division;

    // Distinct L cut positions.
    std::vector<double> lcuts;
    for (const BatchSample& s : samples) lcuts.push_back(s.length);
    std::sort(lcuts.begin(), lcuts.end());
    lcuts.erase(std::unique(lcuts.begin(), lcuts.end()), lcuts.end());
    const size_t p = lcuts.size();

    // dp[i]: best cost covering L in (0, lcuts[i-1]] (outer DP of Alg. 3).
    std::vector<double> dp(p + 1, kInf);
    std::vector<size_t> parent(p + 1, 0);
    // Regions produced by the best strip division ending at i from parent j.
    std::vector<std::vector<PlaneRegion>> strip_regions(p + 1);
    dp[0] = 0.0;
    for (size_t i = 1; i <= p; ++i) {
      for (size_t j = 0; j < i; ++j) {
        if (dp[j] >= kInf) continue;
        const double l_lo = (j == 0) ? 0.0 : lcuts[j - 1];
        const double l_hi = lcuts[i - 1];
        std::vector<int> strip;
        for (size_t s = 0; s < samples.size(); ++s) {
          if (samples[s].length > l_lo && samples[s].length <= l_hi) {
            strip.push_back(static_cast<int>(s));
          }
        }
        std::vector<PlaneRegion> regions;
        const double cost =
            DivideStrip(samples, strip, l_lo, l_hi, min_points, &regions);
        if (cost >= kInf) continue;
        if (dp[j] + cost < dp[i]) {
          dp[i] = dp[j] + cost;
          parent[i] = j;
          strip_regions[i] = std::move(regions);
        }
      }
    }

    if (dp[p] < kInf) {
      for (size_t i = p; i > 0; i = parent[i]) {
        for (const PlaneRegion& r : strip_regions[i]) division.regions.push_back(r);
      }
      division.total_sse = dp[p];
      if (static_cast<int64_t>(division.regions.size()) <= options.max_regions) {
        return division;
      }
      // Too fragmented: coarsen and retry.
      min_points *= 2;
      continue;
    }

    // Not enough samples anywhere: single global fit.
    PlaneRegion global;
    global.length_lo = 0.0;
    global.length_hi = std::numeric_limits<double>::max();
    global.groups_lo = 0.0;
    global.groups_hi = std::numeric_limits<double>::max();
    global.fit = FitBest(samples);
    division.regions = {global};
    division.total_sse = global.fit.sse;
    return division;
  }
}

}  // namespace core
}  // namespace rita
