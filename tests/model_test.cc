// Tests for the model library: encoder mechanics, RITA model heads and shapes,
// TST baseline characteristics.
#include <gtest/gtest.h>

#include "model/rita_model.h"
#include "model/tst_model.h"

namespace rita {
namespace model {
namespace {

RitaConfig SmallRitaConfig(attn::AttentionKind kind, int64_t length = 40,
                           int64_t channels = 3, int64_t classes = 4) {
  RitaConfig config;
  config.input_channels = channels;
  config.input_length = length;
  config.window = 5;
  config.stride = 5;
  config.num_classes = classes;
  config.encoder.dim = 16;
  config.encoder.num_layers = 2;
  config.encoder.num_heads = 2;
  config.encoder.ffn_hidden = 32;
  config.encoder.dropout = 0.0f;
  config.encoder.attention.kind = kind;
  config.encoder.attention.group.num_groups = 4;
  config.encoder.attention.performer_features = 8;
  config.encoder.attention.linformer_k = 4;
  config.encoder.attention.seq_len = config.NumTokens();
  return config;
}

TEST(RitaConfigTest, TokenArithmetic) {
  RitaConfig config = SmallRitaConfig(attn::AttentionKind::kVanilla);
  EXPECT_EQ(config.NumWindows(), 8);  // (40 - 5) / 5 + 1
  EXPECT_EQ(config.NumTokens(), 9);   // + [CLS]
  config.stride = 1;
  EXPECT_EQ(config.NumWindows(), 36);  // paper's stride-1 variant
}

class RitaModelKindTest : public ::testing::TestWithParam<attn::AttentionKind> {};

TEST_P(RitaModelKindTest, EncodeClassifyReconstructShapes) {
  Rng rng(1);
  RitaConfig config = SmallRitaConfig(GetParam());
  RitaModel model(config, &rng);
  Tensor batch = Tensor::RandUniform({3, 40, 3}, &rng, 0.0f, 1.0f);

  ag::Variable encoded = model.Encode(batch);
  EXPECT_EQ(encoded.shape(), (Shape{3, 9, 16}));

  ag::Variable logits = model.ClassLogits(batch);
  EXPECT_EQ(logits.shape(), (Shape{3, 4}));

  ag::Variable recon = model.Reconstruct(batch);
  EXPECT_EQ(recon.shape(), (Shape{3, 40, 3}));

  Tensor emb = model.Embed(batch);
  EXPECT_EQ(emb.shape(), (Shape{3, 16}));
}

TEST_P(RitaModelKindTest, GradientsReachAllParameters) {
  Rng rng(2);
  RitaConfig config = SmallRitaConfig(GetParam());
  RitaModel model(config, &rng);
  Tensor batch = Tensor::RandUniform({2, 40, 3}, &rng, 0.0f, 1.0f);
  ag::Variable loss = ag::CrossEntropy(model.ClassLogits(batch), {0, 2});
  loss.Backward();
  int64_t with_grad = 0, total = 0;
  for (auto& [name, p] : model.NamedParameters()) {
    ++total;
    if (p.has_grad()) ++with_grad;
  }
  // Everything except the reconstruction head receives gradients.
  EXPECT_GE(with_grad, total - 4);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, RitaModelKindTest,
                         ::testing::Values(attn::AttentionKind::kVanilla,
                                           attn::AttentionKind::kGroup,
                                           attn::AttentionKind::kPerformer,
                                           attn::AttentionKind::kLinformer),
                         [](const ::testing::TestParamInfo<attn::AttentionKind>& info) {
                           return attn::AttentionKindName(info.param);
                         });

TEST(RitaModelTest, GroupMechanismsExposedPerLayer) {
  Rng rng(3);
  RitaConfig config = SmallRitaConfig(attn::AttentionKind::kGroup);
  RitaModel model(config, &rng);
  EXPECT_EQ(model.GroupMechanisms().size(), 2u);  // one per layer
  RitaConfig vconfig = SmallRitaConfig(attn::AttentionKind::kVanilla);
  RitaModel vmodel(vconfig, &rng);
  EXPECT_TRUE(vmodel.GroupMechanisms().empty());
}

TEST(RitaModelTest, ReconstructionRoundTripLength) {
  // stride < window: transpose conv output is (n_win - 1) * stride + window.
  Rng rng(4);
  RitaConfig config = SmallRitaConfig(attn::AttentionKind::kVanilla, 41);
  config.window = 5;
  config.stride = 3;
  config.encoder.attention.seq_len = config.NumTokens();
  RitaModel model(config, &rng);
  Tensor batch = Tensor::RandUniform({1, 41, 3}, &rng, 0.0f, 1.0f);
  ag::Variable recon = model.Reconstruct(batch);
  EXPECT_EQ(recon.size(1), (config.NumWindows() - 1) * 3 + 5);  // 41
}

TEST(RitaModelTest, ClsHeadRequiresClasses) {
  Rng rng(5);
  RitaConfig config = SmallRitaConfig(attn::AttentionKind::kVanilla);
  config.num_classes = 0;
  RitaModel model(config, &rng);
  Tensor batch = Tensor::RandUniform({1, 40, 3}, &rng, 0.0f, 1.0f);
  EXPECT_DEATH(model.ClassLogits(batch), "classification head");
}

TEST(RitaModelTest, EmbedIsDeterministicInEvalMode) {
  Rng rng(6);
  RitaConfig config = SmallRitaConfig(attn::AttentionKind::kVanilla);
  config.encoder.dropout = 0.5f;  // must not affect Embed (eval mode inside)
  RitaModel model(config, &rng);
  Tensor batch = Tensor::RandUniform({2, 40, 3}, &rng, 0.0f, 1.0f);
  Tensor a = model.Embed(batch);
  Tensor b = model.Embed(batch);
  EXPECT_TRUE(a.AllClose(b, 0.0f, 0.0f));
  EXPECT_TRUE(model.training()) << "training mode must be restored";
}

TEST(TstModelTest, ShapesAndConcatClassifier) {
  Rng rng(7);
  TstConfig config;
  config.input_channels = 3;
  config.input_length = 32;
  config.num_classes = 5;
  config.encoder.dim = 8;
  config.encoder.num_layers = 1;
  config.encoder.num_heads = 2;
  config.encoder.ffn_hidden = 16;
  config.encoder.dropout = 0.0f;
  TstModel model(config, &rng);

  Tensor batch = Tensor::RandUniform({2, 32, 3}, &rng, 0.0f, 1.0f);
  EXPECT_EQ(model.ClassLogits(batch).shape(), (Shape{2, 5}));
  EXPECT_EQ(model.Reconstruct(batch).shape(), (Shape{2, 32, 3}));

  // The concat classifier dominates the parameter count as T grows — the
  // paper's overfitting explanation for TST's long-series failures.
  TstConfig long_config = config;
  long_config.input_length = 256;
  TstModel long_model(long_config, &rng);
  EXPECT_GT(long_model.NumParameters(), 4 * model.NumParameters());
}

TEST(TstModelTest, AlwaysVanillaAttention) {
  Rng rng(8);
  TstConfig config;
  config.input_channels = 1;
  config.input_length = 16;
  config.num_classes = 2;
  config.encoder.dim = 8;
  config.encoder.num_layers = 1;
  config.encoder.num_heads = 1;
  config.encoder.ffn_hidden = 16;
  // Even if the caller asks for group attention, TST pins vanilla.
  config.encoder.attention.kind = attn::AttentionKind::kGroup;
  TstModel model(config, &rng);
  EXPECT_TRUE(model.GroupMechanisms().empty());
}

}  // namespace
}  // namespace model
}  // namespace rita
