// Tests for the GPU-friendly k-means grouping engine (Sec. 4.4).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "cluster/kmeans.h"
#include "tensor/tensor_ops.h"

namespace rita {
namespace cluster {
namespace {

// Three well-separated Gaussian blobs in 2-D.
Tensor MakeBlobs(int64_t per_blob, Rng* rng) {
  const float centers[3][2] = {{0.0f, 0.0f}, {10.0f, 0.0f}, {0.0f, 10.0f}};
  Tensor points({3 * per_blob, 2});
  float* p = points.data();
  for (int64_t b = 0; b < 3; ++b) {
    for (int64_t i = 0; i < per_blob; ++i) {
      const int64_t r = b * per_blob + i;
      p[r * 2] = centers[b][0] + static_cast<float>(rng->Normal(0.0, 0.3));
      p[r * 2 + 1] = centers[b][1] + static_cast<float>(rng->Normal(0.0, 0.3));
    }
  }
  return points;
}

TEST(PairwiseDistTest, MatmulMatchesNaive) {
  Rng rng(1);
  Tensor a = Tensor::RandNormal({17, 5}, &rng);
  Tensor b = Tensor::RandNormal({9, 5}, &rng);
  Tensor fast = PairwiseSqDistMatmul(a, b);
  Tensor ref = PairwiseSqDistNaive(a, b);
  EXPECT_TRUE(fast.AllClose(ref, 1e-3f, 1e-3f));
}

TEST(PairwiseDistTest, SelfDistanceZeroDiagonal) {
  Rng rng(2);
  Tensor a = Tensor::RandNormal({8, 4}, &rng);
  Tensor d = PairwiseSqDistMatmul(a, a);
  for (int64_t i = 0; i < 8; ++i) EXPECT_NEAR(d.At({i, i}), 0.0f, 1e-4f);
}

TEST(PairwiseDistTest, NonNegativeDespiteCancellation) {
  // Nearly identical large-magnitude vectors provoke cancellation.
  Tensor a = Tensor::Full({4, 3}, 1000.0f);
  Tensor d = PairwiseSqDistMatmul(a, a);
  for (int64_t i = 0; i < d.numel(); ++i) EXPECT_GE(d.data()[i], 0.0f);
}

TEST(KMeansTest, RecoversWellSeparatedBlobs) {
  Rng rng(3);
  Tensor points = MakeBlobs(50, &rng);
  KMeansOptions opts;
  opts.num_clusters = 3;
  opts.max_iters = 10;
  opts.kmeanspp_init = true;
  KMeansResult result = RunKMeans(points, opts, &rng);
  ASSERT_EQ(result.num_clusters(), 3);
  // Every blob is internally pure: members of one blob share an assignment.
  for (int64_t b = 0; b < 3; ++b) {
    std::set<int64_t> labels;
    for (int64_t i = 0; i < 50; ++i) labels.insert(result.assignment[b * 50 + i]);
    EXPECT_EQ(labels.size(), 1u) << "blob " << b << " split";
  }
  // Inertia is small for tight blobs.
  EXPECT_LT(result.inertia / points.size(0), 1.0);
}

TEST(KMeansTest, CountsMatchAssignmentAndArePositive) {
  Rng rng(4);
  Tensor points = Tensor::RandNormal({64, 6}, &rng);
  KMeansOptions opts;
  opts.num_clusters = 8;
  KMeansResult result = RunKMeans(points, opts, &rng);
  std::vector<int64_t> recount(result.num_clusters(), 0);
  for (int64_t a : result.assignment) {
    ASSERT_GE(a, 0);
    ASSERT_LT(a, result.num_clusters());
    ++recount[a];
  }
  for (int64_t c = 0; c < result.num_clusters(); ++c) {
    EXPECT_EQ(recount[c], result.counts[c]);
    EXPECT_GT(result.counts[c], 0);  // empty clusters compacted away
  }
}

TEST(KMeansTest, ClusterCountClampedToPoints) {
  Rng rng(5);
  Tensor points = Tensor::RandNormal({5, 3}, &rng);
  KMeansOptions opts;
  opts.num_clusters = 50;
  KMeansResult result = RunKMeans(points, opts, &rng);
  EXPECT_LE(result.num_clusters(), 5);
}

TEST(KMeansTest, SingletonClustersWhenKEqualsN) {
  Rng rng(6);
  Tensor points = Tensor::RandNormal({12, 4}, &rng);
  KMeansOptions opts;
  opts.num_clusters = 12;
  opts.max_iters = 2;
  KMeansResult result = RunKMeans(points, opts, &rng);
  EXPECT_EQ(result.num_clusters(), 12);
  for (int64_t c : result.counts) EXPECT_EQ(c, 1);
  // Each centroid equals its member point.
  for (int64_t i = 0; i < 12; ++i) {
    const int64_t c = result.assignment[i];
    for (int64_t d = 0; d < 4; ++d) {
      EXPECT_NEAR(result.centroids.At({c, d}), points.At({i, d}), 1e-5f);
    }
  }
}

TEST(KMeansTest, MoreIterationsDoNotIncreaseInertia) {
  Rng rng_data(7);
  Tensor points = Tensor::RandNormal({100, 8}, &rng_data);
  double prev = std::numeric_limits<double>::max();
  for (int iters : {1, 3, 8}) {
    Rng rng(42);  // same init
    KMeansOptions opts;
    opts.num_clusters = 10;
    opts.max_iters = iters;
    KMeansResult result = RunKMeans(points, opts, &rng);
    EXPECT_LE(result.inertia, prev + 1e-3);
    prev = result.inertia;
  }
}

TEST(KMeansTest, DeterministicUnderSeed) {
  Rng rng_data(8);
  Tensor points = Tensor::RandNormal({40, 5}, &rng_data);
  KMeansOptions opts;
  opts.num_clusters = 6;
  Rng r1(77), r2(77);
  KMeansResult a = RunKMeans(points, opts, &r1);
  KMeansResult b = RunKMeans(points, opts, &r2);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_TRUE(a.centroids.AllClose(b.centroids));
}

TEST(KMeansTest, NaiveAndMatmulDistancesAgreeOnResult) {
  Rng rng_data(9);
  Tensor points = Tensor::RandNormal({60, 4}, &rng_data);
  KMeansOptions fast_opts;
  fast_opts.num_clusters = 5;
  fast_opts.matmul_distance = true;
  KMeansOptions naive_opts = fast_opts;
  naive_opts.matmul_distance = false;
  Rng r1(13), r2(13);
  KMeansResult fast = RunKMeans(points, fast_opts, &r1);
  KMeansResult naive = RunKMeans(points, naive_opts, &r2);
  EXPECT_EQ(fast.assignment, naive.assignment);
}

TEST(ClusterRadiiTest, RadiiBoundMemberDistances) {
  Rng rng(10);
  Tensor points = Tensor::RandNormal({50, 3}, &rng);
  KMeansOptions opts;
  opts.num_clusters = 4;
  KMeansResult result = RunKMeans(points, opts, &rng);
  const auto radii = ClusterRadii(points, result);
  ASSERT_EQ(static_cast<int64_t>(radii.size()), result.num_clusters());
  for (int64_t i = 0; i < 50; ++i) {
    const int64_t c = result.assignment[i];
    float d2 = 0.0f;
    for (int64_t k = 0; k < 3; ++k) {
      const float diff = points.At({i, k}) - result.centroids.At({c, k});
      d2 += diff * diff;
    }
    EXPECT_LE(std::sqrt(d2), radii[c] + 1e-5f);
  }
}

TEST(BallRadiusTest, MaxNorm) {
  Tensor points = Tensor::FromVector({3, 2}, {3, 4, 0, 1, -6, 8});
  EXPECT_NEAR(PointBallRadius(points), 10.0f, 1e-5f);  // |(-6, 8)| = 10
}

}  // namespace
}  // namespace cluster
}  // namespace rita
