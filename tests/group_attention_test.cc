// Correctness tests for group attention (the paper's core contribution):
// Lemma 3 exact-equivalence, Lemma 1 error bound, fused-backward gradcheck.
#include <gtest/gtest.h>

#include <cmath>

#include "attention/attention.h"
#include "autograd/gradcheck.h"
#include "core/group_attention.h"
#include "tensor/tensor_ops.h"

namespace rita {
namespace core {
namespace {

// Reference vanilla attention output (no dropout).
Tensor VanillaReference(const Tensor& q, const Tensor& k, const Tensor& v) {
  ag::NoGradGuard guard;
  Rng rng(0);
  attn::VanillaAttention vanilla(q.size(2), 0.0f, &rng);
  vanilla.SetTraining(false);
  return vanilla.Forward(ag::Variable(q), ag::Variable(k), ag::Variable(v)).data();
}

TEST(GroupAttentionTest, OutputShape) {
  Rng rng(1);
  GroupAttentionOptions opts;
  opts.num_groups = 4;
  GroupAttentionMechanism mech(8, opts, &rng);
  ag::Variable q(Tensor::RandNormal({3, 10, 8}, &rng), false);
  ag::Variable k(Tensor::RandNormal({3, 10, 8}, &rng), false);
  ag::Variable v(Tensor::RandNormal({3, 10, 8}, &rng), false);
  ag::Variable o = mech.Forward(q, k, v);
  EXPECT_EQ(o.shape(), (Shape{3, 10, 8}));
}

// Lemma 3 / Appendix A.4: when every window is its own group (N = n), group
// attention must reproduce vanilla attention exactly.
TEST(GroupAttentionTest, SingletonGroupsMatchVanilla) {
  Rng rng(2);
  const int64_t n = 12, d = 6;
  GroupAttentionOptions opts;
  opts.num_groups = n;
  opts.kmeans_iters = 4;
  GroupAttentionMechanism mech(d, opts, &rng);

  Tensor q = Tensor::RandNormal({2, n, d}, &rng);
  Tensor k = Tensor::RandNormal({2, n, d}, &rng);
  Tensor v = Tensor::RandNormal({2, n, d}, &rng);
  ag::Variable o = mech.Forward(ag::Variable(q), ag::Variable(k), ag::Variable(v));
  Tensor ref = VanillaReference(q, k, v);
  EXPECT_TRUE(o.data().AllClose(ref, 1e-3f, 1e-4f));
}

// Lemma 3 again, now with duplicated keys: windows whose keys coincide share
// attention exactly, so group attention with N = #distinct keys is *exact*.
TEST(GroupAttentionTest, DuplicateKeysShareAttentionExactly) {
  Rng rng(3);
  const int64_t n = 16, d = 4, blobs = 4;
  // Keys: 4 distinct vectors, each repeated 4 times.
  Tensor distinct = Tensor::RandNormal({blobs, d}, &rng, 0.0f, 3.0f);
  Tensor k({1, n, d});
  for (int64_t i = 0; i < n; ++i) {
    const int64_t b = i % blobs;
    for (int64_t j = 0; j < d; ++j) k.At({0, i, j}) = distinct.At({b, j});
  }
  Tensor q = Tensor::RandNormal({1, n, d}, &rng);
  Tensor v = Tensor::RandNormal({1, n, d}, &rng);

  GroupAttentionOptions opts;
  opts.num_groups = blobs;
  opts.kmeans_iters = 8;
  opts.kmeanspp_init = true;
  GroupAttentionMechanism mech(d, opts, &rng);
  ag::Variable o = mech.Forward(ag::Variable(q), ag::Variable(k), ag::Variable(v));
  Tensor ref = VanillaReference(q, k, v);
  EXPECT_TRUE(o.data().AllClose(ref, 1e-3f, 1e-4f));
}

// Lemma 1: with every key within distance d_max of its representative, each
// restored attention entry is within a multiplicative exp(2 * d_max * |q|)
// band of the exact attention (inequality (14) in the proof, adapted to the
// scaled dot product).
TEST(GroupAttentionTest, Lemma1ErrorBoundHolds) {
  Rng rng(4);
  const int64_t n = 32, d = 8, ng = 6;
  Tensor q = Tensor::RandNormal({1, n, d}, &rng);
  Tensor k = Tensor::RandNormal({1, n, d}, &rng);

  // Group the keys exactly as the mechanism would.
  Tensor keys2d = k.Reshape({n, d});
  cluster::KMeansOptions km;
  km.num_clusters = ng;
  km.max_iters = 8;
  km.kmeanspp_init = true;
  cluster::KMeansResult grouping = cluster::RunKMeans(keys2d, km, &rng);

  // d_max = max over keys of |k_i - representative|.
  const auto radii = cluster::ClusterRadii(keys2d, grouping);
  float d_max = 0.0f;
  for (float r : radii) d_max = std::max(d_max, r);
  const float q_ball = cluster::PointBallRadius(q.Reshape({n, d}));
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  const float eps = std::exp(2.0f * d_max * q_ball * scale);

  // Exact attention vs attention restored from the group matrix.
  const float* pq = q.data();
  const float* pk = k.data();
  const float* pr = grouping.centroids.data();
  for (int64_t i = 0; i < n; ++i) {
    // Exact row.
    std::vector<double> exact(n), approx(n);
    double exact_sum = 0.0, approx_sum = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      double s_exact = 0.0, s_approx = 0.0;
      const int64_t g = grouping.assignment[j];
      for (int64_t t = 0; t < d; ++t) {
        s_exact += static_cast<double>(pq[i * d + t]) * pk[j * d + t];
        s_approx += static_cast<double>(pq[i * d + t]) * pr[g * d + t];
      }
      exact[j] = std::exp(s_exact * scale);
      approx[j] = std::exp(s_approx * scale);
      exact_sum += exact[j];
      approx_sum += approx[j];
    }
    for (int64_t j = 0; j < n; ++j) {
      const double ratio = (approx[j] / approx_sum) / (exact[j] / exact_sum);
      EXPECT_LE(ratio, eps * 1.01);
      EXPECT_GE(ratio, 1.0 / (eps * 1.01));
    }
  }
}

// The fused backward (group softmax Jacobian + aggregation adjoint + centroid
// mean rule) against finite differences. Keys are placed in well-separated
// blobs so the grouping is stable under the probe perturbations.
TEST(GroupAttentionTest, FusedBackwardGradCheck) {
  Rng rng(5);
  const int64_t n = 8, d = 3, blobs = 3;
  Tensor centers = Tensor::FromVector(
      {blobs, d}, {10, 0, 0, 0, 10, 0, 0, 0, 10});
  Tensor k0({1, n, d});
  for (int64_t i = 0; i < n; ++i) {
    const int64_t b = i % blobs;
    for (int64_t j = 0; j < d; ++j) {
      k0.At({0, i, j}) =
          centers.At({b, j}) + static_cast<float>(rng.Normal(0.0, 0.05));
    }
  }
  ag::Variable q(Tensor::RandNormal({1, n, d}, &rng, 0.0f, 0.3f), true);
  ag::Variable k(k0, true);
  ag::Variable v(Tensor::RandNormal({1, n, d}, &rng), true);
  Tensor w = Tensor::RandNormal({1, n, d}, &rng);

  GroupAttentionOptions opts;
  opts.num_groups = blobs;
  opts.kmeans_iters = 6;
  opts.kmeanspp_init = true;
  opts.collect_snapshots = false;
  GroupAttentionMechanism mech(d, opts, &rng);

  auto f = [&](const std::vector<ag::Variable>& in) {
    return ag::SumAll(ag::Mul(mech.Forward(in[0], in[1], in[2]), ag::Variable(w)));
  };
  ag::GradCheckOptions gopts;
  gopts.eps = 5e-3;
  gopts.rtol = 8e-2;
  gopts.atol = 2e-2;
  auto result = ag::GradCheck(f, {q, k, v}, gopts);
  EXPECT_TRUE(result.ok) << result.message;
}

// With singleton groups the fused backward must match vanilla attention's
// gradients (stronger than finite differences: exact comparison).
TEST(GroupAttentionTest, SingletonBackwardMatchesVanilla) {
  Rng rng(6);
  const int64_t n = 10, d = 4;
  Tensor q0 = Tensor::RandNormal({2, n, d}, &rng);
  Tensor k0 = Tensor::RandNormal({2, n, d}, &rng);
  Tensor v0 = Tensor::RandNormal({2, n, d}, &rng);
  Tensor w = Tensor::RandNormal({2, n, d}, &rng);

  auto run = [&](bool group) {
    ag::Variable q(q0.Clone(), true), k(k0.Clone(), true), v(v0.Clone(), true);
    ag::Variable o;
    if (group) {
      GroupAttentionOptions opts;
      opts.num_groups = n;
      opts.kmeans_iters = 4;
      GroupAttentionMechanism mech(d, opts, &rng);
      o = mech.Forward(q, k, v);
    } else {
      Rng r2(0);
      attn::VanillaAttention vanilla(d, 0.0f, &r2);
      vanilla.SetTraining(false);
      o = vanilla.Forward(q, k, v);
    }
    ag::SumAll(ag::Mul(o, ag::Variable(w))).Backward();
    return std::array<Tensor, 3>{q.grad().Clone(), k.grad().Clone(), v.grad().Clone()};
  };

  auto g_group = run(true);
  auto g_vanilla = run(false);
  EXPECT_TRUE(g_group[0].AllClose(g_vanilla[0], 1e-3f, 1e-4f)) << "dQ mismatch";
  EXPECT_TRUE(g_group[1].AllClose(g_vanilla[1], 1e-3f, 1e-4f)) << "dK mismatch";
  EXPECT_TRUE(g_group[2].AllClose(g_vanilla[2], 1e-3f, 1e-4f)) << "dV mismatch";
}

TEST(GroupAttentionTest, SnapshotsDescribeGrouping) {
  Rng rng(7);
  GroupAttentionOptions opts;
  opts.num_groups = 5;
  GroupAttentionMechanism mech(4, opts, &rng);
  ag::Variable q(Tensor::RandNormal({3, 20, 4}, &rng), false);
  ag::Variable k(Tensor::RandNormal({3, 20, 4}, &rng), false);
  ag::Variable v(Tensor::RandNormal({3, 20, 4}, &rng), false);
  mech.Forward(q, k, v);

  const auto& snaps = mech.last_snapshots();
  ASSERT_EQ(snaps.size(), 3u);  // one per batch*head slice
  for (const auto& s : snaps) {
    int64_t total = 0;
    for (int64_t c : s.counts) total += c;
    EXPECT_EQ(total, 20);
    EXPECT_EQ(s.radii.size(), s.counts.size());
    EXPECT_GT(s.key_ball_radius, 0.0f);
  }
}

TEST(GroupAttentionTest, SetNumGroupsClampsAndApplies) {
  Rng rng(8);
  GroupAttentionOptions opts;
  opts.num_groups = 16;
  GroupAttentionMechanism mech(4, opts, &rng);
  mech.set_num_groups(9);
  EXPECT_EQ(mech.num_groups(), 9);
  mech.set_num_groups(-3);
  EXPECT_EQ(mech.num_groups(), 1);
  EXPECT_EQ(mech.ScoreMatrixElements(100), 100);  // n * N with N = 1
}

TEST(GroupAttentionTest, FewerGroupsUseLessScoreMemory) {
  Rng rng(9);
  GroupAttentionOptions opts;
  opts.num_groups = 8;
  GroupAttentionMechanism mech(4, opts, &rng);
  Rng r2(0);
  attn::VanillaAttention vanilla(4, 0.0f, &r2);
  const int64_t n = 1000;
  EXPECT_LT(mech.ScoreMatrixElements(n), vanilla.ScoreMatrixElements(n));
}

}  // namespace
}  // namespace core
}  // namespace rita
