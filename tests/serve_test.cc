// Tests for the serving subsystem: FrozenModel weight-copy fidelity,
// micro-batch transparency (a request's result does not depend on the batch
// it rode in), the InferenceEngine's coalescing / validation / stats, and the
// acceptance contract — one FrozenModel hammered by many client threads
// produces bit-identical outputs to the single-threaded path. Run under
// RITA_SANITIZE=thread in CI.
#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "core/batch_planner.h"
#include "serve/accuracy_gate.h"
#include "serve/frozen_model.h"
#include "serve/inference_engine.h"
#include "util/execution_context.h"
#include "util/thread_pool.h"

namespace rita {
namespace serve {
namespace {

model::RitaConfig SmallConfig(attn::AttentionKind kind) {
  model::RitaConfig config;
  config.input_channels = 2;
  config.input_length = 60;
  config.window = 5;
  config.stride = 5;
  config.num_classes = 4;
  config.encoder.dim = 16;
  config.encoder.num_layers = 2;
  config.encoder.num_heads = 2;
  config.encoder.ffn_hidden = 32;
  config.encoder.dropout = 0.1f;  // frozen replica must switch it off
  config.encoder.attention.kind = kind;
  config.encoder.attention.group.num_groups = 4;
  return config;
}

Tensor MakeSeries(int64_t t, int64_t c, uint64_t seed) {
  Rng rng(seed);
  return Tensor::RandNormal({t, c}, &rng);
}

bool BitEqual(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), sizeof(float) * a.numel()) == 0;
}

// A fresh source model's first eval forward uses RNG stream 0 and, for a
// single-sample batch, the same head-indexed slice streams the frozen replica
// pins — so the replica must reproduce the source bitwise.
TEST(FrozenModelTest, ReproducesSourceEvalForward) {
  for (attn::AttentionKind kind :
       {attn::AttentionKind::kVanilla, attn::AttentionKind::kGroup,
        attn::AttentionKind::kLinformer, attn::AttentionKind::kPerformer}) {
    model::RitaConfig config = SmallConfig(kind);
    if (kind == attn::AttentionKind::kLinformer) {
      config.encoder.attention.linformer_k = 8;
      config.encoder.attention.seq_len = config.NumTokens();
    }
    Rng rng(42);
    model::RitaModel source(config, &rng);
    FrozenModel frozen(source);

    Rng data_rng(7);
    Tensor batch = Tensor::RandNormal({1, 60, 2}, &data_rng);
    source.SetTraining(false);
    ag::NoGradGuard guard;
    Tensor want = source.ClassLogits(batch).data();
    Tensor got = frozen.ClassLogits(batch);
    EXPECT_TRUE(BitEqual(want, got))
        << "frozen replica diverges for kind " << static_cast<int>(kind);
  }
}

TEST(FrozenModelTest, CopiesAdaptedGroupCountAndSeed) {
  model::RitaConfig config = SmallConfig(attn::AttentionKind::kGroup);
  Rng rng(3);
  model::RitaModel source(config, &rng);
  // Simulate an adaptive-scheduler decision before freezing.
  for (auto* mech : source.GroupMechanisms()) mech->set_num_groups(3);
  FrozenModel frozen(source);
  EXPECT_EQ(frozen.num_groups(), 3);
}

// Batch-position invariance: each row of a coalesced [B, T, C] forward is
// bit-identical to running that row alone — the property that makes engine
// micro-batching transparent.
TEST(FrozenModelTest, MicroBatchTransparency) {
  model::RitaConfig config = SmallConfig(attn::AttentionKind::kGroup);
  Rng rng(5);
  model::RitaModel source(config, &rng);
  FrozenModel frozen(source);

  const int64_t b = 5, t = 60, c = 2;
  Rng data_rng(11);
  Tensor batch = Tensor::RandNormal({b, t, c}, &data_rng);
  Tensor batched = frozen.ClassLogits(batch);

  for (int64_t i = 0; i < b; ++i) {
    Tensor single({1, t, c});
    std::copy(batch.data() + i * t * c, batch.data() + (i + 1) * t * c,
              single.data());
    Tensor alone = frozen.ClassLogits(single);
    EXPECT_EQ(std::memcmp(alone.data(), batched.data() + i * config.num_classes,
                          sizeof(float) * config.num_classes),
              0)
        << "row " << i << " depends on its batch position";
  }
}

TEST(FrozenModelTest, SameRequestAlwaysSameOutput) {
  model::RitaConfig config = SmallConfig(attn::AttentionKind::kGroup);
  Rng rng(9);
  model::RitaModel source(config, &rng);
  FrozenModel frozen(source);
  Tensor batch = MakeSeries(60, 2, 1).Reshape({1, 60, 2});
  Tensor first = frozen.ClassLogits(batch);
  Tensor second = frozen.ClassLogits(batch);
  EXPECT_TRUE(BitEqual(first, second)) << "frozen inference is not deterministic";
}

TEST(InferenceEngineTest, RejectsInvalidRequests) {
  model::RitaConfig config = SmallConfig(attn::AttentionKind::kGroup);
  Rng rng(13);
  model::RitaModel source(config, &rng);
  FrozenModel frozen(source);
  InferenceEngineOptions options;
  InferenceEngine engine(&frozen, options);

  // Wrong channel count.
  InferenceRequest bad_channels;
  bad_channels.series = MakeSeries(60, 3, 2);
  EXPECT_EQ(engine.Run(std::move(bad_channels)).status.code(),
            StatusCode::kInvalidArgument);
  // Longer than the model's configured input length.
  InferenceRequest too_long;
  too_long.series = MakeSeries(61, 2, 3);
  EXPECT_EQ(engine.Run(std::move(too_long)).status.code(),
            StatusCode::kInvalidArgument);
  // Not a [T, C] tensor.
  InferenceRequest bad_rank;
  bad_rank.series = Tensor::Zeros({1, 60, 2});
  EXPECT_EQ(engine.Run(std::move(bad_rank)).status.code(),
            StatusCode::kInvalidArgument);
  // The rejection split distinguishes bad input from overload; all three
  // were invalid, none backpressure or hopeless.
  EXPECT_EQ(engine.stats().rejected_invalid, 3u);
  EXPECT_EQ(engine.stats().rejected_backpressure, 0u);
  EXPECT_EQ(engine.stats().rejected_hopeless, 0u);
  EXPECT_EQ(engine.stats().completed, 0u);
}

// Linformer's length projection is locked to the configured token count, so
// the engine must reject short series as a recoverable error instead of
// letting the forward's fatal check take the process down.
TEST(InferenceEngineTest, RejectsShortSeriesForLinformerModels) {
  model::RitaConfig config = SmallConfig(attn::AttentionKind::kLinformer);
  config.encoder.attention.linformer_k = 8;
  config.encoder.attention.seq_len = config.NumTokens();
  Rng rng(19);
  model::RitaModel source(config, &rng);
  FrozenModel frozen(source);
  InferenceEngineOptions options;
  InferenceEngine engine(&frozen, options);

  InferenceRequest short_series;
  short_series.series = MakeSeries(30, 2, 4);
  EXPECT_EQ(engine.Run(std::move(short_series)).status.code(),
            StatusCode::kInvalidArgument);
  InferenceRequest full;
  full.series = MakeSeries(60, 2, 5);
  EXPECT_TRUE(engine.Run(std::move(full)).status.ok());
}

TEST(InferenceEngineTest, ServesAllTasksAndVariableLengths) {
  model::RitaConfig config = SmallConfig(attn::AttentionKind::kGroup);
  Rng rng(17);
  model::RitaModel source(config, &rng);
  FrozenModel frozen(source);
  InferenceEngineOptions options;
  options.num_workers = 2;
  InferenceEngine engine(&frozen, options);

  // Classification at full length.
  InferenceRequest classify;
  classify.series = MakeSeries(60, 2, 21);
  classify.task = ServeTask::kClassify;
  InferenceResponse r1 = engine.Run(std::move(classify));
  ASSERT_TRUE(r1.status.ok()) << r1.status.ToString();
  EXPECT_EQ(r1.output.shape(), Shape({4}));

  // Embedding of a shorter series (length bucket 35).
  InferenceRequest embed;
  embed.series = MakeSeries(35, 2, 22);
  embed.task = ServeTask::kEmbed;
  InferenceResponse r2 = engine.Run(std::move(embed));
  ASSERT_TRUE(r2.status.ok()) << r2.status.ToString();
  EXPECT_EQ(r2.output.shape(), Shape({16}));

  // Reconstruction of a mid-length series.
  InferenceRequest recon;
  recon.series = MakeSeries(50, 2, 23);
  recon.task = ServeTask::kReconstruct;
  InferenceResponse r3 = engine.Run(std::move(recon));
  ASSERT_TRUE(r3.status.ok()) << r3.status.ToString();
  EXPECT_EQ(r3.output.shape(), Shape({50, 2}));

  const InferenceEngineStats stats = engine.stats();
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.rejected_invalid, 0u);
  EXPECT_EQ(stats.rejected_backpressure, 0u);
  EXPECT_EQ(stats.rejected_hopeless, 0u);
}

// The acceptance contract: one FrozenModel shared by >= 8 client threads
// through the engine produces bit-identical outputs to the single-threaded
// ClassLogits path. Also exercises coalescing (batched submission from many
// threads) under TSan.
TEST(InferenceEngineTest, EightClientThreadsBitIdenticalToSingleThreaded) {
  model::RitaConfig config = SmallConfig(attn::AttentionKind::kGroup);
  Rng rng(29);
  model::RitaModel source(config, &rng);
  FrozenModel frozen(source);

  constexpr int kClients = 8;
  constexpr int kPerClient = 6;
  const int64_t t = 60, c = 2;

  // Single-threaded references, one request at a time.
  std::vector<Tensor> requests;
  std::vector<Tensor> want;
  for (int i = 0; i < kClients * kPerClient; ++i) {
    Tensor series = MakeSeries(t, c, 100 + i);
    requests.push_back(series);
    want.push_back(frozen.ClassLogits(series.Reshape({1, t, c})));
  }

  ThreadPool pool(4);
  ExecutionContext context(&pool);
  InferenceEngineOptions options;
  options.num_workers = 3;
  options.max_micro_batch = 8;
  options.context = &context;
  InferenceEngine engine(&frozen, options);

  std::vector<std::future<InferenceResponse>> futures(kClients * kPerClient);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int client = 0; client < kClients; ++client) {
    clients.emplace_back([&, client] {
      for (int j = 0; j < kPerClient; ++j) {
        const int idx = client * kPerClient + j;
        InferenceRequest request;
        request.series = requests[idx];
        request.task = ServeTask::kClassify;
        futures[idx] = engine.Submit(std::move(request));
      }
    });
  }
  for (auto& thread : clients) thread.join();

  for (size_t i = 0; i < futures.size(); ++i) {
    InferenceResponse response = futures[i].get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    ASSERT_EQ(response.output.numel(), want[i].numel());
    EXPECT_EQ(std::memcmp(response.output.data(), want[i].data(),
                          sizeof(float) * want[i].numel()),
              0)
        << "request " << i << " diverged from the single-threaded path "
        << "(micro_batch=" << response.micro_batch << ")";
    EXPECT_GE(response.micro_batch, 1);
    EXPECT_LE(response.micro_batch, options.max_micro_batch);
  }

  const InferenceEngineStats stats = engine.stats();
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(kClients * kPerClient));
  EXPECT_GE(stats.batches, 1u);
  EXPECT_LE(stats.max_micro_batch, options.max_micro_batch);
}

// Deterministic coalescing: with the executors paused, every request queues
// first, so on Resume() the engine MUST pack them into full micro-batches
// (scheduling-independent, unlike asserting batch sizes under live load).
TEST(InferenceEngineTest, CoalescesQueuedRequestsIntoMicroBatches) {
  model::RitaConfig config = SmallConfig(attn::AttentionKind::kGroup);
  Rng rng(41);
  model::RitaModel source(config, &rng);
  FrozenModel frozen(source);

  InferenceEngineOptions options;
  options.num_workers = 1;
  options.max_micro_batch = 8;
  options.start_paused = true;
  InferenceEngine engine(&frozen, options);

  constexpr int kRequests = 24;
  std::vector<std::future<InferenceResponse>> futures;
  for (int i = 0; i < kRequests; ++i) {
    InferenceRequest request;
    request.series = MakeSeries(60, 2, 500 + i);
    futures.push_back(engine.Submit(std::move(request)));
  }
  engine.Resume();
  for (auto& future : futures) ASSERT_TRUE(future.get().status.ok());

  const InferenceEngineStats stats = engine.stats();
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(kRequests));
  EXPECT_EQ(stats.batches, static_cast<uint64_t>(kRequests / 8));
  EXPECT_EQ(stats.max_micro_batch, 8);
  EXPECT_DOUBLE_EQ(stats.AvgBatchSize(), 8.0);

  // A running engine can be paused again (maintenance window): requests
  // queue up and complete only after Resume().
  engine.Pause();
  std::vector<std::future<InferenceResponse>> paused_futures;
  for (int i = 0; i < 8; ++i) {
    InferenceRequest request;
    request.series = MakeSeries(60, 2, 600 + i);
    paused_futures.push_back(engine.Submit(std::move(request)));
  }
  engine.Resume();
  for (auto& future : paused_futures) ASSERT_TRUE(future.get().status.ok());
  EXPECT_EQ(engine.stats().completed, static_cast<uint64_t>(kRequests + 8));
}

TEST(InferenceEngineTest, PlannerCapsMicroBatches) {
  model::RitaConfig config = SmallConfig(attn::AttentionKind::kGroup);
  Rng rng(31);
  model::RitaModel source(config, &rng);
  FrozenModel frozen(source);

  core::EncoderShape shape;
  shape.layers = config.encoder.num_layers;
  shape.dim = config.encoder.dim;
  shape.heads = config.encoder.num_heads;
  shape.ffn_hidden = config.encoder.ffn_hidden;
  shape.window = config.window;
  shape.stride = config.stride;
  shape.channels = config.input_channels;
  shape.kind = attn::AttentionKind::kGroup;
  core::MemoryModel memory(shape);
  core::BatchPlannerOptions planner_options;
  planner_options.max_length = config.input_length;
  core::BatchPlanner planner(memory, planner_options);
  Rng planner_rng(1);
  planner.Calibrate(&planner_rng);

  InferenceEngineOptions options;
  options.planner = &planner;
  options.max_micro_batch = 16;
  InferenceEngine engine(&frozen, options);

  std::vector<std::future<InferenceResponse>> futures;
  for (int i = 0; i < 20; ++i) {
    InferenceRequest request;
    request.series = MakeSeries(60, 2, 300 + i);
    futures.push_back(engine.Submit(std::move(request)));
  }
  const int64_t cap =
      std::min<int64_t>(16, planner.PredictBatchSize(60, frozen.num_groups()));
  for (auto& future : futures) {
    InferenceResponse response = future.get();
    ASSERT_TRUE(response.status.ok());
    EXPECT_LE(response.micro_batch, cap);
  }
}

// Both kinds of rejection present in one run land in their own split
// counters without crosstalk.
TEST(InferenceEngineTest, RejectionSplitCountsBothKinds) {
  model::RitaConfig config = SmallConfig(attn::AttentionKind::kGroup);
  Rng rng(43);
  model::RitaModel source(config, &rng);
  FrozenModel frozen(source);
  InferenceEngineOptions options;
  options.max_queue = 2;       // third valid submission hits backpressure
  options.cache_bytes = 0;     // identical series must not short-circuit
  options.start_paused = true;  // keep the queue full until we resume
  InferenceEngine engine(&frozen, options);

  std::vector<std::future<InferenceResponse>> admitted;
  int backpressure = 0;
  for (int i = 0; i < 5; ++i) {
    InferenceRequest request;
    request.series = MakeSeries(60, 2, 700 + i);
    auto future = engine.Submit(std::move(request));
    if (future.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
      EXPECT_EQ(future.get().status.code(), StatusCode::kOutOfMemory);
      ++backpressure;
    } else {
      admitted.push_back(std::move(future));
    }
  }
  EXPECT_EQ(backpressure, 3);
  for (int i = 0; i < 2; ++i) {
    InferenceRequest invalid;
    invalid.series = MakeSeries(60, 5, 800 + i);  // wrong channel count
    EXPECT_FALSE(engine.Run(std::move(invalid)).status.ok());
  }

  const InferenceEngineStats stats = engine.stats();
  EXPECT_EQ(stats.rejected_backpressure, 3u);
  EXPECT_EQ(stats.rejected_invalid, 2u);
  EXPECT_EQ(stats.rejected_hopeless, 0u);

  engine.Resume();
  for (auto& future : admitted) EXPECT_TRUE(future.get().status.ok());
}

// Deadlines are scheduling hints, but missing one is now counted: a request
// resolved past its deadline increments deadline_missed (aggregate and
// per-model), while on-time requests leave it untouched.
TEST(InferenceEngineTest, CountsDeadlineMisses) {
  model::RitaConfig config = SmallConfig(attn::AttentionKind::kGroup);
  Rng rng(47);
  model::RitaModel source(config, &rng);
  FrozenModel frozen(source);
  InferenceEngineOptions options;
  options.start_paused = true;
  InferenceEngine engine(&frozen, options);

  InferenceRequest hopeless;
  hopeless.series = MakeSeries(60, 2, 900);
  hopeless.deadline = ServeClock::now() - std::chrono::milliseconds(1);
  auto late = engine.Submit(std::move(hopeless));
  InferenceRequest relaxed;
  relaxed.series = MakeSeries(60, 2, 901);
  relaxed.deadline = ServeClock::now() + std::chrono::hours(1);
  auto on_time = engine.Submit(std::move(relaxed));
  engine.Resume();
  EXPECT_TRUE(late.get().status.ok());  // late, not dropped
  EXPECT_TRUE(on_time.get().status.ok());

  EXPECT_EQ(engine.stats().deadline_missed, 1u);
  EXPECT_EQ(engine.model_stats(0).deadline_missed, 1u);
}

// Context-conditioned forwards: null context reproduces the plain forward
// bit-for-bit (and hands back the same [CLS] Embed() computes); a real
// context changes the output deterministically.
TEST(FrozenModelTest, ContextConditionedForwards) {
  model::RitaConfig config = SmallConfig(attn::AttentionKind::kGroup);
  Rng rng(53);
  model::RitaModel source(config, &rng);
  FrozenModel frozen(source);
  Tensor batch = MakeSeries(60, 2, 30).Reshape({1, 60, 2});

  Tensor cls;
  Tensor plain = frozen.ClassLogitsWithContext(batch, nullptr, &cls);
  EXPECT_TRUE(BitEqual(plain, frozen.ClassLogits(batch)));
  EXPECT_TRUE(BitEqual(cls.Reshape({1, 16}), frozen.Embed(batch)));

  Rng ctx_rng(31);
  Tensor context = Tensor::RandNormal({1, 16}, &ctx_rng);
  Tensor conditioned = frozen.ClassLogitsWithContext(batch, &context, nullptr);
  EXPECT_FALSE(BitEqual(conditioned, plain)) << "context token had no effect";
  Tensor again = frozen.ClassLogitsWithContext(batch, &context, nullptr);
  EXPECT_TRUE(BitEqual(conditioned, again));

  Tensor recon_cls;
  Tensor recon = frozen.ReconstructWithContext(batch, &context, &recon_cls);
  EXPECT_EQ(recon.shape(), Shape({1, 60, 2}));
  EXPECT_EQ(recon_cls.shape(), Shape({1, 16}));
  EXPECT_FALSE(BitEqual(recon, frozen.Reconstruct(batch)));
}

// Engine-level context routing: want_context returns the [CLS] embedding,
// context-bearing requests compute (never cached) and match the direct
// FrozenModel path bit-for-bit.
TEST(InferenceEngineTest, RoutesContextRequestsAndBypassesCache) {
  model::RitaConfig config = SmallConfig(attn::AttentionKind::kGroup);
  Rng rng(59);
  model::RitaModel source(config, &rng);
  FrozenModel frozen(source);
  InferenceEngineOptions options;  // cache on (default budget)
  InferenceEngine engine(&frozen, options);
  Tensor series = MakeSeries(60, 2, 31);

  InferenceRequest first;
  first.series = series;
  first.want_context = true;
  InferenceResponse r1 = engine.Run(std::move(first));
  ASSERT_TRUE(r1.status.ok()) << r1.status.ToString();
  ASSERT_TRUE(r1.context.defined());
  EXPECT_EQ(r1.context.shape(), Shape({16}));
  EXPECT_TRUE(BitEqual(r1.context.Reshape({1, 16}),
                       frozen.Embed(series.Reshape({1, 60, 2}))));

  InferenceRequest second;
  second.series = series;
  second.context = r1.context;
  second.want_context = true;
  InferenceResponse r2 = engine.Run(std::move(second));
  ASSERT_TRUE(r2.status.ok());
  EXPECT_FALSE(r2.cache_hit) << "context-bearing requests must bypass the cache";
  Tensor ctx_batch = r1.context.Reshape({1, 16});
  Tensor want = frozen.ClassLogitsWithContext(series.Reshape({1, 60, 2}),
                                              &ctx_batch, nullptr);
  EXPECT_TRUE(BitEqual(r2.output.Reshape({1, 4}), want));

  // Replaying an identical context request recomputes instead of hitting.
  InferenceRequest replay;
  replay.series = series;
  replay.context = r1.context;
  InferenceResponse r3 = engine.Run(std::move(replay));
  ASSERT_TRUE(r3.status.ok());
  EXPECT_FALSE(r3.cache_hit);
  EXPECT_TRUE(BitEqual(r3.output.Reshape({1, 4}), want));

  InferenceRequest bad_context;
  bad_context.series = series;
  bad_context.context = Tensor::Zeros({7});  // wrong dim
  EXPECT_EQ(engine.Run(std::move(bad_context)).status.code(),
            StatusCode::kInvalidArgument);
}

TEST(InferenceEngineTest, RejectsContextForLinformerModels) {
  model::RitaConfig config = SmallConfig(attn::AttentionKind::kLinformer);
  config.encoder.attention.linformer_k = 8;
  config.encoder.attention.seq_len = config.NumTokens();
  Rng rng(61);
  model::RitaModel source(config, &rng);
  FrozenModel frozen(source);
  InferenceEngineOptions options;
  InferenceEngine engine(&frozen, options);

  InferenceRequest request;
  request.series = MakeSeries(60, 2, 32);
  request.context = Tensor::Zeros({16});
  EXPECT_EQ(engine.Run(std::move(request)).status.code(),
            StatusCode::kNotSupported);
}

TEST(InferenceEngineTest, ShutdownDrainsQueueAndRejectsAfter) {
  model::RitaConfig config = SmallConfig(attn::AttentionKind::kGroup);
  Rng rng(37);
  model::RitaModel source(config, &rng);
  FrozenModel frozen(source);
  InferenceEngineOptions options;
  auto engine = std::make_unique<InferenceEngine>(&frozen, options);

  std::vector<std::future<InferenceResponse>> futures;
  for (int i = 0; i < 10; ++i) {
    InferenceRequest request;
    request.series = MakeSeries(60, 2, 400 + i);
    futures.push_back(engine->Submit(std::move(request)));
  }
  engine->Shutdown();
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().status.ok()) << "queued request dropped on shutdown";
  }
  InferenceRequest late;
  late.series = MakeSeries(60, 2, 999);
  EXPECT_FALSE(engine->Run(std::move(late)).status.ok());
}

// Per-task cache admission: a flood of large kReconstruct payloads may only
// evict within its own budget slice — every resident kClassify entry must
// survive and keep hitting.
TEST(ResultCacheTest, ReconstructFloodCannotEvictClassifyEntries) {
  ResultCache::Options options;
  options.num_shards = 1;  // one LRU per task; makes the split exact
  options.byte_budget = 64 << 10;
  options.classify_fraction = 0.5;
  options.reconstruct_fraction = 0.5;
  options.embed_fraction = 0.0;  // collapses to a single-entry minimum slice
  ResultCache cache(options);

  // 16 classify entries of 256 floats = 16 KiB, well inside the 32 KiB slice.
  std::vector<ResultCache::Key> classify_keys;
  Rng rng(1);
  for (int i = 0; i < 16; ++i) {
    Tensor series = Tensor::RandNormal({8, 4}, &rng);
    ResultCache::Key key =
        ResultCache::MakeKey(/*model_fingerprint=*/7, ServeTask::kClassify, series);
    cache.Insert(key, ServeTask::kClassify, Tensor::RandNormal({256}, &rng));
    classify_keys.push_back(key);
  }
  const ResultCacheStats before = cache.stats();
  ASSERT_EQ(before.entries_by_task[static_cast<int>(ServeTask::kClassify)], 16);

  // Flood with reconstruct outputs of 4 KiB each: 32 inserts = 4x the whole
  // reconstruct slice, forcing evictions — all of which must stay in-task.
  for (int i = 0; i < 32; ++i) {
    Tensor series = Tensor::RandNormal({16, 4}, &rng);
    ResultCache::Key key = ResultCache::MakeKey(
        /*model_fingerprint=*/7, ServeTask::kReconstruct, series);
    cache.Insert(key, ServeTask::kReconstruct, Tensor::RandNormal({1024}, &rng));
  }

  const ResultCacheStats after = cache.stats();
  EXPECT_GT(after.evictions, before.evictions) << "flood must overflow its slice";
  EXPECT_EQ(after.entries_by_task[static_cast<int>(ServeTask::kClassify)], 16)
      << "reconstruct evictions leaked into the classify slice";
  EXPECT_LE(after.bytes_by_task[static_cast<int>(ServeTask::kReconstruct)],
            options.byte_budget / 2);
  for (const ResultCache::Key& key : classify_keys) {
    Tensor out;
    EXPECT_TRUE(cache.Lookup(key, &out)) << "classify entry evicted by flood";
  }
}

// An output larger than its task's slice is refused outright rather than
// wiping the slice for a single entry.
TEST(ResultCacheTest, OversizedPayloadSkipsInsertion) {
  ResultCache::Options options;
  options.num_shards = 1;
  options.byte_budget = 8 << 10;
  ResultCache cache(options);
  Rng rng(2);
  Tensor series = Tensor::RandNormal({8, 4}, &rng);
  ResultCache::Key key =
      ResultCache::MakeKey(/*model_fingerprint=*/1, ServeTask::kEmbed, series);
  // 16 KiB payload vs an 8 KiB budget split three ways: cannot fit.
  cache.Insert(key, ServeTask::kEmbed, Tensor::RandNormal({4096}, &rng));
  Tensor out;
  EXPECT_FALSE(cache.Lookup(key, &out));
  EXPECT_EQ(cache.stats().entries, 0);
}

// ---------------------------------------------------------------------------
// Quantized & mixed-precision frozen variants
// ---------------------------------------------------------------------------

TEST(QuantizedServingTest, VariantsShrinkWeightsAndPassAccuracyGate) {
  model::RitaConfig config = SmallConfig(attn::AttentionKind::kGroup);
  Rng rng(61);
  model::RitaModel source(config, &rng);
  FrozenModel fp32(source);
  FrozenModel int8(source, Precision::kInt8);
  FrozenModel bf16(source, Precision::kBf16);

  EXPECT_EQ(fp32.precision(), Precision::kFp32);
  EXPECT_EQ(int8.precision(), Precision::kInt8);
  EXPECT_EQ(bf16.precision(), Precision::kBf16);

  // Footprint: int8 payload is 0.25x, plus 8 bytes/column of scale +
  // correction overhead = 0.25 + 2/k — this tiny config (k = 16/32) sits
  // near 0.36; the bench gates <= 0.30 at realistic dims. bf16 is exactly
  // 0.5x; total serving bytes stay strictly ordered.
  EXPECT_EQ(fp32.QuantizedBytesRatio(), 1.0);
  EXPECT_LT(int8.QuantizedBytesRatio(), 0.40);
  EXPECT_EQ(bf16.QuantizedBytesRatio(), 0.5);
  EXPECT_LT(int8.WeightBytes(), bf16.WeightBytes());
  EXPECT_LT(bf16.WeightBytes(), fp32.WeightBytes());
  EXPECT_EQ(fp32.MemoryScale(), 1.0);
  EXPECT_EQ(int8.MemoryScale(), 0.5);

  // Variants compute different functions: fingerprints must separate so the
  // result cache can never alias them; the fp32 freeze stays reproducible.
  EXPECT_NE(fp32.Fingerprint(), int8.Fingerprint());
  EXPECT_NE(fp32.Fingerprint(), bf16.Fingerprint());
  EXPECT_NE(int8.Fingerprint(), bf16.Fingerprint());
  EXPECT_EQ(fp32.Fingerprint(), FrozenModel(source).Fingerprint());

  // The fp32 variant is bit-for-bit the pre-quantization serving path.
  Rng data_rng(62);
  Tensor batch = Tensor::RandNormal({6, 60, 2}, &data_rng);
  EXPECT_TRUE(BitEqual(FrozenModel(source).ClassLogits(batch),
                       fp32.ClassLogits(batch)));

  // Accuracy-delta gate: both reduced-precision variants agree with fp32 on
  // >= 99% of argmax decisions and reconstruct at most 5% worse.
  for (const FrozenModel* variant : {&int8, &bf16}) {
    AccuracyDeltaReport report;
    const Status verdict = CheckAccuracyDelta(fp32, *variant, batch, {}, &report);
    EXPECT_TRUE(verdict.ok())
        << PrecisionName(variant->precision()) << ": " << verdict.ToString();
    EXPECT_GE(report.classification_agreement, 0.99);
    EXPECT_LE(report.reconstruction_mse_ratio, 1.05);
  }

  // A sanity bound the gate itself enforces elsewhere: quantization DID
  // change the bits (this is not secretly the fp32 path).
  EXPECT_FALSE(BitEqual(fp32.ClassLogits(batch), int8.ClassLogits(batch)));
}

// Per-row dynamic activation quantization keeps the batch-position invariance
// micro-batching relies on, and the graph lowering routes through the same
// quantized Linear forwards — so both must be bitwise equal to the
// variant's own sequential single-row forwards.
TEST(QuantizedServingTest, QuantizedForwardsAreBatchInvariantAndGraphIdentical) {
  model::RitaConfig config = SmallConfig(attn::AttentionKind::kGroup);
  Rng rng(63);
  model::RitaModel source(config, &rng);
  FrozenModel int8(source, Precision::kInt8);

  const int64_t b = 4, t = 60, c = 2;
  Rng data_rng(64);
  Tensor batch = Tensor::RandNormal({b, t, c}, &data_rng);
  Tensor batched = int8.ClassLogits(batch);
  for (int64_t i = 0; i < b; ++i) {
    Tensor row({1, t, c});
    std::memcpy(row.data(), batch.data() + i * t * c, sizeof(float) * t * c);
    Tensor solo = int8.ClassLogits(row);
    EXPECT_EQ(std::memcmp(batched.data() + i * batched.size(1), solo.data(),
                          sizeof(float) * batched.size(1)),
              0)
        << "row " << i << " depends on its micro-batch";
  }

  ThreadPool pool(4);
  ExecutionContext exec(&pool);
  Tensor via_graph = int8.ForwardGraph(graph::ForwardTask::kClassLogits, batch,
                                       nullptr, nullptr, &exec);
  EXPECT_TRUE(BitEqual(batched, via_graph));
}

TEST(QuantizedServingTest, RegistryServesVariantsSideBySide) {
  model::RitaConfig config = SmallConfig(attn::AttentionKind::kGroup);
  Rng rng(65);
  model::RitaModel source(config, &rng);
  FrozenModel fp32(source);
  FrozenModel int8(source, Precision::kInt8);

  ModelRegistry registry;
  const int64_t fp32_id = registry.Register("m", &fp32);
  const int64_t int8_id = registry.RegisterVariant("m", &int8);
  EXPECT_EQ(registry.Find("m"), fp32_id);
  EXPECT_EQ(registry.Find("m@int8"), int8_id);
  EXPECT_EQ(registry.PrecisionOf(int8_id), Precision::kInt8);
  EXPECT_EQ(registry.WeightBytes(int8_id), int8.WeightBytes());
  EXPECT_EQ(registry.MemoryScale(int8_id), 0.5);
  EXPECT_EQ(registry.MemoryScale(fp32_id), 1.0);

  InferenceEngineOptions options;
  options.cache_bytes = 0;
  InferenceEngine engine(&registry, options);
  for (int64_t id : {fp32_id, int8_id}) {
    InferenceRequest request;
    request.series = MakeSeries(60, 2, 900);
    request.model_id = id;
    InferenceResponse response = engine.Run(std::move(request));
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_EQ(response.output.shape(), Shape({4}));
  }
  // Per-variant identity surfaces through model_stats.
  const InferenceEngineStats fp32_stats = engine.model_stats(fp32_id);
  const InferenceEngineStats int8_stats = engine.model_stats(int8_id);
  EXPECT_EQ(fp32_stats.precision, Precision::kFp32);
  EXPECT_EQ(int8_stats.precision, Precision::kInt8);
  EXPECT_EQ(int8_stats.weight_bytes, int8.WeightBytes());
  EXPECT_LT(int8_stats.weight_bytes, fp32_stats.weight_bytes);
  EXPECT_LT(int8_stats.weight_bytes_ratio, 0.40);  // tiny dims; see above
  EXPECT_EQ(fp32_stats.weight_bytes_ratio, 1.0);
}

}  // namespace
}  // namespace serve
}  // namespace rita
