// Tests for the dataset substrate: transforms, masking, the three synthetic
// generators (determinism, shape, class separability) and the paper registry.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/generators.h"
#include "data/masking.h"
#include "data/registry.h"

namespace rita {
namespace data {
namespace {

// 1-NN on raw series: a crude separability check that class structure exists.
double OneNnAccuracy(const TimeseriesDataset& train, const TimeseriesDataset& valid) {
  const int64_t per = train.length() * train.channels();
  int64_t correct = 0;
  for (int64_t i = 0; i < valid.size(); ++i) {
    const float* vi = valid.series.data() + i * per;
    double best = 1e300;
    int64_t best_label = -1;
    for (int64_t j = 0; j < train.size(); ++j) {
      const float* tj = train.series.data() + j * per;
      double d = 0.0;
      for (int64_t k = 0; k < per; ++k) {
        const double diff = vi[k] - tj[k];
        d += diff * diff;
      }
      if (d < best) {
        best = d;
        best_label = train.labels[j];
      }
    }
    if (best_label == valid.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / valid.size();
}

TEST(DatasetTest, MinMaxScaleBoundsAndConstants) {
  TimeseriesDataset ds;
  ds.series = Tensor::FromVector({2, 2, 2}, {-4, 0, 2, 4, 7, 7, 7, 7});
  MinMaxScaleInPlace(&ds);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_GE(ds.series.data()[i], 0.0f);
    EXPECT_LE(ds.series.data()[i], 1.0f);
  }
  EXPECT_FLOAT_EQ(ds.series.data()[0], 0.0f);
  EXPECT_FLOAT_EQ(ds.series.data()[3], 1.0f);
  for (int64_t i = 4; i < 8; ++i) EXPECT_FLOAT_EQ(ds.series.data()[i], 0.0f);
}

TEST(DatasetTest, SubsetKeepsLabelsAligned) {
  HarOptions opts;
  opts.num_samples = 20;
  opts.length = 16;
  opts.num_classes = 4;
  TimeseriesDataset ds = GenerateHar(opts);
  TimeseriesDataset sub = Subset(ds, {3, 7, 11});
  EXPECT_EQ(sub.size(), 3);
  EXPECT_EQ(sub.labels[1], ds.labels[7]);
  Tensor a = sub.Sample(1);
  Tensor b = ds.Sample(7);
  EXPECT_TRUE(a.AllClose(b));
}

TEST(DatasetTest, TrainValSplitPartitions) {
  HarOptions opts;
  opts.num_samples = 100;
  opts.length = 16;
  TimeseriesDataset ds = GenerateHar(opts);
  Rng rng(1);
  SplitDataset split = TrainValSplit(ds, 0.9, &rng);
  EXPECT_EQ(split.train.size() + split.valid.size(), 100);
  EXPECT_EQ(split.train.size(), 90);
}

TEST(DatasetTest, FewLabelSubsetRespectsPerClassCap) {
  HarOptions opts;
  opts.num_samples = 300;
  opts.length = 16;
  opts.num_classes = 5;
  TimeseriesDataset ds = GenerateHar(opts);
  Rng rng(2);
  TimeseriesDataset few = FewLabelSubset(ds, 10, &rng);
  std::map<int64_t, int64_t> counts;
  for (int64_t label : few.labels) ++counts[label];
  for (auto& [label, count] : counts) EXPECT_LE(count, 10);
  EXPECT_LE(few.size(), 50);
}

TEST(DatasetTest, SelectChannelExtractsColumn) {
  HarOptions opts;
  opts.num_samples = 5;
  opts.length = 12;
  opts.channels = 3;
  TimeseriesDataset ds = GenerateHar(opts);
  TimeseriesDataset uni = SelectChannel(ds, 1);
  EXPECT_EQ(uni.channels(), 1);
  EXPECT_EQ(uni.length(), 12);
  EXPECT_FLOAT_EQ(uni.series.At({2, 5, 0}), ds.series.At({2, 5, 1}));
  EXPECT_EQ(uni.labels, ds.labels);
}

TEST(MaskingTest, MaskRateApproximatelyRespected) {
  Rng rng(3);
  Tensor batch = Tensor::RandUniform({8, 200, 3}, &rng, 0.0f, 1.0f);
  MaskedBatch masked = ApplyTimestampMask(batch, 0.2f, &rng);
  const double rate =
      static_cast<double>(masked.masked_timestamps) / (8.0 * 200.0);
  EXPECT_NEAR(rate, 0.2, 0.05);
}

TEST(MaskingTest, MaskedPositionsCarryMarkerAndMask) {
  Rng rng(4);
  Tensor batch = Tensor::RandUniform({4, 50, 2}, &rng, 0.0f, 1.0f);
  MaskedBatch masked = ApplyTimestampMask(batch, 0.3f, &rng);
  const float* c = masked.corrupted.data();
  const float* m = masked.mask.data();
  const float* t = masked.target.data();
  for (int64_t i = 0; i < masked.corrupted.numel(); ++i) {
    if (m[i] == 1.0f) {
      EXPECT_FLOAT_EQ(c[i], -1.0f);
    } else {
      EXPECT_FLOAT_EQ(c[i], t[i]);
    }
  }
}

TEST(MaskingTest, AllChannelsMaskedTogether) {
  Rng rng(5);
  Tensor batch = Tensor::RandUniform({2, 30, 4}, &rng, 0.0f, 1.0f);
  MaskedBatch masked = ApplyTimestampMask(batch, 0.25f, &rng);
  const float* m = masked.mask.data();
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t j = 0; j < 30; ++j) {
      const float first = m[(i * 30 + j) * 4];
      for (int64_t k = 1; k < 4; ++k) {
        EXPECT_EQ(m[(i * 30 + j) * 4 + k], first) << "channel-inconsistent mask";
      }
    }
  }
}

TEST(MaskingTest, EverySampleHasAtLeastOneMask) {
  Rng rng(6);
  Tensor batch = Tensor::RandUniform({16, 10, 1}, &rng, 0.0f, 1.0f);
  MaskedBatch masked = ApplyTimestampMask(batch, 0.05f, &rng);  // low rate
  const float* m = masked.mask.data();
  for (int64_t i = 0; i < 16; ++i) {
    float sum = 0.0f;
    for (int64_t j = 0; j < 10; ++j) sum += m[i * 10 + j];
    EXPECT_GE(sum, 1.0f);
  }
}

TEST(MaskingTest, ForecastMasksSuffix) {
  Rng rng(7);
  Tensor batch = Tensor::RandUniform({2, 20, 1}, &rng, 0.0f, 1.0f);
  MaskedBatch masked = ApplyForecastMask(batch, 5);
  const float* m = masked.mask.data();
  for (int64_t j = 0; j < 20; ++j) {
    EXPECT_EQ(m[j], j >= 15 ? 1.0f : 0.0f);
  }
  EXPECT_EQ(masked.masked_timestamps, 10);
}

class GeneratorDeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorDeterminismTest, SameSeedSameData) {
  const int which = GetParam();
  auto make = [&](uint64_t seed) -> TimeseriesDataset {
    switch (which) {
      case 0: {
        HarOptions o;
        o.num_samples = 10;
        o.length = 32;
        o.seed = seed;
        return GenerateHar(o);
      }
      case 1: {
        EcgOptions o;
        o.num_samples = 6;
        o.length = 120;
        o.beat_period = 30;
        o.seed = seed;
        return GenerateEcg(o);
      }
      default: {
        EegOptions o;
        o.num_samples = 4;
        o.length = 200;
        o.channels = 6;
        o.seed = seed;
        return GenerateEeg(o);
      }
    }
  };
  TimeseriesDataset a = make(11), b = make(11), c = make(12);
  EXPECT_TRUE(a.series.AllClose(b.series, 0.0f, 0.0f));
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_FALSE(a.series.AllClose(c.series, 1e-5f, 1e-6f));
}

std::string GeneratorCaseName(const ::testing::TestParamInfo<int>& info) {
  static const char* kNames[] = {"Har", "Ecg", "Eeg"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, GeneratorDeterminismTest,
                         ::testing::Values(0, 1, 2), GeneratorCaseName);

TEST(HarGeneratorTest, ClassesAreSeparable) {
  HarOptions opts;
  opts.num_samples = 240;
  opts.length = 64;
  opts.num_classes = 6;
  opts.noise = 0.15f;
  TimeseriesDataset ds = GenerateHar(opts);
  Rng rng(8);
  SplitDataset split = TrainValSplit(ds, 0.8, &rng);
  const double acc = OneNnAccuracy(split.train, split.valid);
  const double chance = 1.0 / 6.0;
  EXPECT_GT(acc, 3.0 * chance) << "HAR classes not separable: " << acc;
}

TEST(HarGeneratorTest, HeterogeneityAddsVariance) {
  HarOptions base;
  base.num_samples = 200;
  base.length = 64;
  base.num_classes = 4;
  HarOptions het = base;
  het.device_heterogeneity = true;
  TimeseriesDataset clean = GenerateHar(base);
  TimeseriesDataset noisy = GenerateHar(het);
  Rng r1(9), r2(9);
  const double acc_clean = OneNnAccuracy(TrainValSplit(clean, 0.8, &r1).train,
                                         TrainValSplit(clean, 0.8, &r1).valid);
  const double acc_noisy = OneNnAccuracy(TrainValSplit(noisy, 0.8, &r2).train,
                                         TrainValSplit(noisy, 0.8, &r2).valid);
  // HHAR-style heterogeneity makes the task harder (paper Sec. 6.1).
  EXPECT_LE(acc_noisy, acc_clean + 0.05);
}

TEST(EcgGeneratorTest, ClassesAreSeparable) {
  EcgOptions opts;
  opts.num_samples = 180;
  opts.length = 200;
  opts.beat_period = 40;
  opts.num_classes = 4;  // normal, AF, PAC, PVC
  TimeseriesDataset ds = GenerateEcg(opts);
  Rng rng(10);
  SplitDataset split = TrainValSplit(ds, 0.8, &rng);
  // Raw-Euclidean 1-NN is phase-sensitive, so rhythm classes (AF/PAC/PVC
  // differ in beat *timing*) only modestly beat chance here; the deep models
  // with convolutional frontends do far better (see bench_fig3).
  const double acc = OneNnAccuracy(split.train, split.valid);
  EXPECT_GT(acc, 1.5 / 4.0) << "ECG rhythm classes not separable: " << acc;
}

TEST(EegGeneratorTest, SeizureLabelsWhenRequested) {
  EegOptions opts;
  opts.num_samples = 40;
  opts.length = 400;
  opts.channels = 8;
  opts.labeled = true;
  opts.seizure_probability = 0.5f;
  TimeseriesDataset ds = GenerateEeg(opts);
  EXPECT_EQ(ds.num_classes, 2);
  std::set<int64_t> labels(ds.labels.begin(), ds.labels.end());
  EXPECT_EQ(labels.size(), 2u);  // both classes appear at p = 0.5
}

TEST(EegGeneratorTest, UnlabeledByDefault) {
  EegOptions opts;
  opts.num_samples = 4;
  opts.length = 100;
  TimeseriesDataset ds = GenerateEeg(opts);
  EXPECT_FALSE(ds.labeled());
  EXPECT_EQ(ds.num_classes, 0);
}

TEST(RegistryTest, SpecsMatchTable1) {
  const PaperDatasetSpec wisdm = GetPaperSpec(PaperDataset::kWisdm);
  EXPECT_EQ(wisdm.train_size, 28280);
  EXPECT_EQ(wisdm.valid_size, 3112);
  EXPECT_EQ(wisdm.length, 200);
  EXPECT_EQ(wisdm.num_classes, 18);
  const PaperDatasetSpec mgh = GetPaperSpec(PaperDataset::kMgh);
  EXPECT_EQ(mgh.length, 10000);
  EXPECT_EQ(mgh.channels, 21);
  EXPECT_EQ(mgh.num_classes, 0);
}

TEST(RegistryTest, ScaledDatasetRespectsProportions) {
  DatasetScale scale;
  scale.size = 0.01;
  scale.length = 0.2;
  SplitDataset ecg = MakePaperDataset(PaperDataset::kEcg, scale, 123);
  EXPECT_EQ(ecg.train.length(), 400);  // 2000 * 0.2
  EXPECT_EQ(ecg.train.channels(), 12);
  EXPECT_EQ(ecg.train.num_classes, 9);
  // Train fraction ~ 31091 / 34642.
  const double frac = static_cast<double>(ecg.train.size()) /
                      (ecg.train.size() + ecg.valid.size());
  EXPECT_NEAR(frac, 0.897, 0.02);
}

TEST(RegistryTest, UnivariateDerivativesHaveOneChannel) {
  DatasetScale scale;
  scale.size = 0.005;
  scale.length = 0.3;
  SplitDataset uni = MakePaperDataset(PaperDataset::kWisdmUni, scale, 5);
  EXPECT_EQ(uni.train.channels(), 1);
  EXPECT_EQ(uni.train.num_classes, 18);
}

TEST(RegistryTest, DeterministicInSeed) {
  DatasetScale scale;
  scale.size = 0.003;
  scale.length = 0.2;
  SplitDataset a = MakePaperDataset(PaperDataset::kHhar, scale, 99);
  SplitDataset b = MakePaperDataset(PaperDataset::kHhar, scale, 99);
  EXPECT_TRUE(a.train.series.AllClose(b.train.series, 0.0f, 0.0f));
  EXPECT_EQ(a.valid.labels, b.valid.labels);
}

}  // namespace
}  // namespace data
}  // namespace rita
