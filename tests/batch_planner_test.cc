// Tests for the batch planner stack: memory model monotonicity, Alg. 2 binary
// search maximality, curve fitting, DP plane division optimality properties.
#include <gtest/gtest.h>

#include <cmath>

#include "core/batch_planner.h"

namespace rita {
namespace core {
namespace {

EncoderShape SmallShape(attn::AttentionKind kind = attn::AttentionKind::kGroup) {
  EncoderShape s;
  s.layers = 4;
  s.dim = 32;
  s.heads = 2;
  s.ffn_hidden = 64;
  s.window = 5;
  s.stride = 5;
  s.channels = 3;
  s.kind = kind;
  return s;
}

TEST(MemoryModelTest, TokensFormula) {
  EncoderShape s = SmallShape();
  EXPECT_EQ(s.Tokens(200), (200 - 5) / 5 + 1 + 1);  // windows + CLS
  EXPECT_EQ(s.Tokens(5), 2);
}

TEST(MemoryModelTest, MonotoneInBatchLengthAndGroups) {
  MemoryModel model(SmallShape());
  EXPECT_LT(model.PeakBytes(1, 200, 16), model.PeakBytes(2, 200, 16));
  EXPECT_LT(model.PeakBytes(4, 200, 16), model.PeakBytes(4, 2000, 16));
  EXPECT_LT(model.PeakBytes(4, 200, 8), model.PeakBytes(4, 200, 64));
}

TEST(MemoryModelTest, VanillaQuadraticDominatesGroupAtLongLengths) {
  MemoryModel group_model(SmallShape(attn::AttentionKind::kGroup));
  MemoryModel vanilla_model(SmallShape(attn::AttentionKind::kVanilla));
  // At length 10000 the n^2 term dwarfs group attention's n*N.
  EXPECT_GT(vanilla_model.PeakBytes(1, 10000, 32),
            4.0 * group_model.PeakBytes(1, 10000, 32));
}

TEST(MemoryModelTest, OomDetectedForHugeVanillaBatch) {
  MemoryModelOptions mo;
  mo.capacity_bytes = 16.0 * (1ull << 30);
  MemoryModel model(SmallShape(attn::AttentionKind::kVanilla), mo);
  // TST/Vanilla at MGH scale (length 10000) cannot fit a meaningful batch —
  // the Table 2 "N/A (OOM)" behaviour.
  EXPECT_FALSE(model.Fits(64, 10000, 0, 0.9));
}

TEST(BatchPlannerTest, ProbeReturnsMaximalFeasibleBatch) {
  MemoryModel model(SmallShape());
  BatchPlannerOptions opts;
  opts.max_length = 2000;
  BatchPlanner planner(model, opts);
  for (int64_t length : {200, 1000, 2000}) {
    for (int64_t groups : {4, 32}) {
      const int64_t b = planner.ProbeBatchSize(length, groups);
      EXPECT_TRUE(model.Fits(b, length, groups, 0.9));
      EXPECT_FALSE(model.Fits(b + 1, length, groups, 0.9))
          << "not maximal at L=" << length << " N=" << groups;
    }
  }
}

TEST(BatchPlannerTest, ProbeShrinksWithLengthAndGroups) {
  MemoryModel model(SmallShape());
  BatchPlannerOptions opts;
  opts.max_length = 10000;
  BatchPlanner planner(model, opts);
  EXPECT_GE(planner.ProbeBatchSize(200, 8), planner.ProbeBatchSize(2000, 8));
  EXPECT_GE(planner.ProbeBatchSize(2000, 8), planner.ProbeBatchSize(2000, 128));
}

TEST(BatchPlannerTest, CalibrateThenPredictCloseToProbe) {
  MemoryModel model(SmallShape());
  BatchPlannerOptions opts;
  opts.max_length = 4000;
  opts.num_samples = 64;
  BatchPlanner planner(model, opts);
  Rng rng(42);
  planner.Calibrate(&rng);
  ASSERT_TRUE(planner.calibrated());

  // Prediction within 30% of ground truth on unseen points.
  Rng probe_rng(7);
  for (int i = 0; i < 20; ++i) {
    const int64_t length = 5 + probe_rng.UniformInt(3995);
    const int64_t tokens = model.shape().Tokens(length);
    const int64_t groups = 1 + probe_rng.UniformInt(tokens);
    const int64_t truth = planner.ProbeBatchSize(length, groups);
    const int64_t pred = planner.PredictBatchSize(length, groups);
    EXPECT_GE(pred, 1);
    const double rel =
        std::fabs(static_cast<double>(pred - truth)) / static_cast<double>(truth);
    EXPECT_LT(rel, 0.3) << "L=" << length << " N=" << groups << " truth=" << truth
                        << " pred=" << pred;
  }
}

TEST(BatchPlannerTest, PredictionNeverExceedsMemoryBudget) {
  MemoryModel model(SmallShape());
  BatchPlannerOptions opts;
  opts.max_length = 4000;
  BatchPlanner planner(model, opts);
  Rng rng(1);
  planner.Calibrate(&rng);
  for (int64_t length : {100, 500, 2500, 4000}) {
    const int64_t pred = planner.PredictBatchSize(length, 16);
    EXPECT_TRUE(model.Fits(pred, length, 16, 0.9)) << "OOM guard failed";
  }
}

// Serving-workload conservatism: the inference engine trusts
// PredictBatchSize to cap micro-batches, so after the halving guard the
// prediction must fit the memory model at EVERY calibration sample and at
// arbitrary off-sample points of the serving envelope — an overshoot anywhere
// would let a coalesced micro-batch OOM the device.
TEST(BatchPlannerTest, ServingPredictionsConservativeEverywhere) {
  MemoryModel model(SmallShape());
  BatchPlannerOptions opts;
  opts.max_length = 5000;
  opts.num_samples = 48;
  BatchPlanner planner(model, opts);
  Rng rng(11);
  planner.Calibrate(&rng);
  ASSERT_TRUE(planner.calibrated());

  for (const BatchSample& sample : planner.calibration_samples()) {
    const int64_t length = static_cast<int64_t>(sample.length);
    const int64_t groups = static_cast<int64_t>(sample.groups);
    const int64_t pred = planner.PredictBatchSize(length, groups);
    EXPECT_GE(pred, 1);
    EXPECT_TRUE(model.Fits(pred, length, groups, opts.memory_fraction))
        << "calibration sample L=" << length << " N=" << groups
        << " predicts OOM batch " << pred;
  }

  Rng probe(23);
  for (int i = 0; i < 200; ++i) {
    const int64_t length = 5 + probe.UniformInt(opts.max_length - 4);
    const int64_t tokens = model.shape().Tokens(length);
    const int64_t groups = 1 + probe.UniformInt(tokens);
    const int64_t pred = planner.PredictBatchSize(length, groups);
    EXPECT_GE(pred, 1);
    EXPECT_TRUE(model.Fits(pred, length, groups, opts.memory_fraction))
        << "off-sample point L=" << length << " N=" << groups
        << " predicts OOM batch " << pred;
  }
}

TEST(CurveFitTest, SolveLinearSystemExact) {
  // x + 2y = 5; 3x - y = 1  ->  x = 1, y = 2.
  std::vector<double> x;
  ASSERT_TRUE(SolveLinearSystem({{1, 2}, {3, -1}}, {5, 1}, &x));
  EXPECT_NEAR(x[0], 1.0, 1e-9);
  EXPECT_NEAR(x[1], 2.0, 1e-9);
}

TEST(CurveFitTest, SingularSystemRejected) {
  std::vector<double> x;
  EXPECT_FALSE(SolveLinearSystem({{1, 2}, {2, 4}}, {3, 6}, &x));
}

TEST(CurveFitTest, RecoversPlantedCoefficients) {
  // B = 10 + 2000/L + 30000/(L N), family kInverseLength.
  std::vector<BatchSample> samples;
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const double l = 10.0 + rng.UniformInt(990);
    const double n = 1.0 + rng.UniformInt(64);
    samples.push_back({l, n, 10.0 + 2000.0 / l + 30000.0 / (l * n)});
  }
  FittedFunction fit = FitFamilyLeastSquares(FitFamily::kInverseLength, samples);
  ASSERT_EQ(fit.coeffs.size(), 3u);
  EXPECT_NEAR(fit.coeffs[0], 10.0, 1e-3);
  EXPECT_NEAR(fit.coeffs[1], 2000.0, 1e-1);
  EXPECT_NEAR(fit.coeffs[2], 30000.0, 1.0);
  EXPECT_LT(fit.sse, 1e-6);
}

TEST(CurveFitTest, FitBestPicksLowestSse) {
  std::vector<BatchSample> samples;
  Rng rng(4);
  for (int i = 0; i < 60; ++i) {
    const double l = 10.0 + rng.UniformInt(990);
    const double n = 1.0 + rng.UniformInt(64);
    samples.push_back({l, n, 5.0 + 100.0 / n});  // needs the 1/N basis
  }
  FittedFunction best = FitBest(samples);
  EXPECT_EQ(best.family, FitFamily::kInverseAffine);  // only family with 1/N
  EXPECT_LT(best.sse, 1e-5);
}

TEST(PlaneDivisionTest, SinglePlaneWhenOneFunctionSuffices) {
  std::vector<BatchSample> samples;
  Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    const double l = 10.0 + rng.UniformInt(990);
    const double n = 1.0 + rng.UniformInt(64);
    samples.push_back({l, n, 20.0 + 5000.0 / (l * n)});
  }
  PlaneDivision division = DividePlane(samples);
  EXPECT_LT(division.total_sse, 1e-4);
  // Predict matches the generator closely.
  EXPECT_NEAR(division.Predict(500, 10), 20.0 + 5000.0 / 5000.0, 0.05);
}

TEST(PlaneDivisionTest, DpCostNotWorseThanGlobalFit) {
  // Piecewise generator: different regimes for short and long L.
  std::vector<BatchSample> samples;
  Rng rng(6);
  for (int i = 0; i < 60; ++i) {
    const double l = 10.0 + rng.UniformInt(1990);
    const double n = 1.0 + rng.UniformInt(64);
    const double b = (l < 800) ? 200.0 + 1000.0 / n : 20.0 + 3000.0 / (l * n);
    samples.push_back({l, n, b});
  }
  const FittedFunction global = FitBest(samples);
  PlaneDivisionOptions opts;
  opts.min_points_per_region = 8;
  PlaneDivision division = DividePlane(samples, opts);
  EXPECT_LE(division.total_sse, global.sse + 1e-9)
      << "DP division must not lose to the single global fit";
  EXPECT_GE(division.regions.size(), 2u) << "piecewise data should induce a split";
}

TEST(PlaneDivisionTest, FallbackOnTinySampleSets) {
  std::vector<BatchSample> samples = {{100, 4, 50}, {200, 8, 25}};
  PlaneDivision division = DividePlane(samples);
  ASSERT_EQ(division.regions.size(), 1u);  // global fallback
  // Prediction is finite everywhere.
  EXPECT_TRUE(std::isfinite(division.Predict(50, 2)));
  EXPECT_TRUE(std::isfinite(division.Predict(5000, 100)));
}

}  // namespace
}  // namespace core
}  // namespace rita
