// Unit tests for the Tensor container: construction, factories, reshape
// semantics, cloning and accessors.
#include <gtest/gtest.h>

#include "tensor/tensor.h"

namespace rita {
namespace {

TEST(ShapeTest, NumelAndToString) {
  EXPECT_EQ(ShapeNumel({2, 3, 4}), 24);
  EXPECT_EQ(ShapeNumel({}), 1);
  EXPECT_EQ(ShapeNumel({0, 5}), 0);
  EXPECT_EQ(ShapeToString({2, 3}), "[2, 3]");
}

TEST(TensorTest, DefaultIsUndefined) {
  Tensor t;
  EXPECT_FALSE(t.defined());
  EXPECT_EQ(t.numel(), 0);
}

TEST(TensorTest, ZeroInitialised) {
  Tensor t({2, 3});
  EXPECT_TRUE(t.defined());
  EXPECT_EQ(t.numel(), 6);
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(t.data()[i], 0.0f);
}

TEST(TensorTest, FullAndScalar) {
  Tensor t = Tensor::Full({2, 2}, 3.5f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(t.data()[i], 3.5f);
  Tensor s = Tensor::Scalar(-1.0f);
  EXPECT_EQ(s.Item(), -1.0f);
}

TEST(TensorTest, FromVectorAndAt) {
  Tensor t = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.At({0, 0}), 1.0f);
  EXPECT_EQ(t.At({0, 2}), 3.0f);
  EXPECT_EQ(t.At({1, 0}), 4.0f);
  EXPECT_EQ(t.At({1, 2}), 6.0f);
}

TEST(TensorTest, FromVectorRejectsShapeSizeMismatch) {
  EXPECT_DEATH(Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5}), "FromVector");
  EXPECT_DEATH(Tensor::FromVector({2}, {1, 2, 3}), "FromVector");
}

TEST(TensorTest, ArangeProducesSequence) {
  Tensor t = Tensor::Arange(5);
  for (int64_t i = 0; i < 5; ++i) EXPECT_EQ(t.data()[i], static_cast<float>(i));
}

TEST(TensorTest, NegativeSizeIndex) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.size(-1), 4);
  EXPECT_EQ(t.size(-3), 2);
}

TEST(TensorTest, ReshapeSharesStorage) {
  Tensor t = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshape({3, 2});
  r.data()[0] = 99.0f;
  EXPECT_EQ(t.data()[0], 99.0f);
}

TEST(TensorTest, ReshapeInfersMinusOne) {
  Tensor t({4, 6});
  Tensor r = t.Reshape({2, -1});
  EXPECT_EQ(r.size(1), 12);
  Tensor r2 = t.Reshape({-1});
  EXPECT_EQ(r2.size(0), 24);
}

TEST(TensorTest, CloneIsDeep) {
  Tensor t = Tensor::Full({2}, 1.0f);
  Tensor c = t.Clone();
  c.data()[0] = 5.0f;
  EXPECT_EQ(t.data()[0], 1.0f);
}

TEST(TensorTest, CopyFromMatchingNumel) {
  Tensor a({2, 2});
  Tensor b = Tensor::FromVector({4}, {1, 2, 3, 4});
  a.CopyFrom(b);
  EXPECT_EQ(a.At({1, 1}), 4.0f);
}

TEST(TensorTest, RandNormalStatistics) {
  Rng rng(42);
  Tensor t = Tensor::RandNormal({10000}, &rng, 2.0f, 0.5f);
  double sum = 0.0, sum2 = 0.0;
  for (int64_t i = 0; i < t.numel(); ++i) {
    sum += t.data()[i];
    sum2 += static_cast<double>(t.data()[i]) * t.data()[i];
  }
  const double mean = sum / t.numel();
  const double var = sum2 / t.numel() - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 0.25, 0.05);
}

TEST(TensorTest, RandUniformBounds) {
  Rng rng(42);
  Tensor t = Tensor::RandUniform({1000}, &rng, -1.0f, 1.0f);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t.data()[i], -1.0f);
    EXPECT_LT(t.data()[i], 1.0f);
  }
}

TEST(TensorTest, AllCloseExactAndTolerance) {
  Tensor a = Tensor::FromVector({3}, {1.0f, 2.0f, 3.0f});
  Tensor b = Tensor::FromVector({3}, {1.0f, 2.0f, 3.0f});
  EXPECT_TRUE(a.AllClose(b));
  b.data()[2] = 3.0001f;
  EXPECT_TRUE(a.AllClose(b, 1e-3f, 1e-3f));
  b.data()[2] = 4.0f;
  EXPECT_FALSE(a.AllClose(b));
}

TEST(TensorTest, AllCloseShapeMismatch) {
  Tensor a({2, 3});
  Tensor b({3, 2});
  EXPECT_FALSE(a.AllClose(b));
}

TEST(TensorTest, ToStringTruncates) {
  Tensor t = Tensor::Arange(100);
  const std::string s = t.ToString(4);
  EXPECT_NE(s.find("..."), std::string::npos);
  EXPECT_NE(s.find("Tensor[100]"), std::string::npos);
}

TEST(TensorTest, FillOverwrites) {
  Tensor t = Tensor::Arange(4);
  t.Fill(7.0f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(t.data()[i], 7.0f);
}

}  // namespace
}  // namespace rita
