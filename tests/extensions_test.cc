// Tests for the extension modules: the naive restore-the-matrix group
// attention (Sec. 4.2.1 strawman, used as a correctness oracle for the fused
// Alg. 1 path), forecast training, and reconstruction-based anomaly
// detection.
#include <gtest/gtest.h>

#include "core/naive_group_attention.h"
#include "data/generators.h"
#include "model/rita_model.h"
#include "train/anomaly.h"
#include "train/trainer.h"

namespace rita {
namespace {

// ---------------------------------------------------------------------------
// Naive vs fused group attention
// ---------------------------------------------------------------------------

// Both mechanisms on the same blob-structured keys: outputs must coincide
// (Lemma 3 executed twice, through two different code paths).
TEST(NaiveGroupAttentionTest, ForwardMatchesFusedPath) {
  Rng rng(1);
  const int64_t n = 12, d = 4, blobs = 3;
  // Well-separated duplicate keys so both k-means runs find the same grouping.
  Tensor centers = Tensor::FromVector({blobs, d},
                                      {10, 0, 0, 0, 0, 10, 0, 0, 0, 0, 10, 0});
  Tensor k({1, n, d});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < d; ++j) k.At({0, i, j}) = centers.At({i % blobs, j});
  }
  Tensor q = Tensor::RandNormal({1, n, d}, &rng);
  Tensor v = Tensor::RandNormal({1, n, d}, &rng);

  core::GroupAttentionOptions options;
  options.num_groups = blobs;
  options.kmeans_iters = 6;
  options.kmeanspp_init = true;
  Rng r1(7), r2(7);
  core::GroupAttentionMechanism fused(d, options, &r1);
  core::NaiveGroupAttention naive(d, options, &r2);

  Tensor fused_out =
      fused.Forward(ag::Variable(q), ag::Variable(k), ag::Variable(v)).data();
  Tensor naive_out =
      naive.Forward(ag::Variable(q), ag::Variable(k), ag::Variable(v)).data();
  EXPECT_TRUE(fused_out.AllClose(naive_out, 1e-3f, 1e-4f))
      << "Alg. 1 must equal restore-then-softmax";
}

TEST(NaiveGroupAttentionTest, BackwardMatchesFusedPath) {
  Rng rng(2);
  const int64_t n = 9, d = 3, blobs = 3;
  Tensor centers = Tensor::FromVector({blobs, d}, {8, 0, 0, 0, 8, 0, 0, 0, 8});
  Tensor k0({1, n, d});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < d; ++j) {
      k0.At({0, i, j}) =
          centers.At({i % blobs, j}) + static_cast<float>(rng.Normal(0.0, 0.02));
    }
  }
  Tensor q0 = Tensor::RandNormal({1, n, d}, &rng);
  Tensor v0 = Tensor::RandNormal({1, n, d}, &rng);
  Tensor w = Tensor::RandNormal({1, n, d}, &rng);

  core::GroupAttentionOptions options;
  options.num_groups = blobs;
  options.kmeans_iters = 8;
  options.kmeanspp_init = true;
  options.collect_snapshots = false;

  auto grads = [&](bool use_naive) {
    Rng mech_rng(7);
    ag::Variable q(q0.Clone(), true), k(k0.Clone(), true), v(v0.Clone(), true);
    ag::Variable out;
    if (use_naive) {
      core::NaiveGroupAttention mech(d, options, &mech_rng);
      out = mech.Forward(q, k, v);
    } else {
      core::GroupAttentionMechanism mech(d, options, &mech_rng);
      out = mech.Forward(q, k, v);
    }
    ag::SumAll(ag::Mul(out, ag::Variable(w))).Backward();
    return std::array<Tensor, 3>{q.grad().Clone(), k.grad().Clone(), v.grad().Clone()};
  };

  auto fused = grads(false);
  auto naive = grads(true);
  EXPECT_TRUE(fused[0].AllClose(naive[0], 2e-3f, 1e-4f)) << "dQ";
  EXPECT_TRUE(fused[1].AllClose(naive[1], 2e-3f, 1e-4f)) << "dK";
  EXPECT_TRUE(fused[2].AllClose(naive[2], 2e-3f, 1e-4f)) << "dV";
}

TEST(NaiveGroupAttentionTest, QuadraticScoreFootprint) {
  Rng rng(3);
  core::GroupAttentionOptions options;
  options.num_groups = 8;
  core::NaiveGroupAttention naive(4, options, &rng);
  core::GroupAttentionMechanism fused(4, options, &rng);
  // The ablation in one line: naive is n^2, fused is n*N.
  EXPECT_EQ(naive.ScoreMatrixElements(1000), 1000 * 1000);
  EXPECT_EQ(fused.ScoreMatrixElements(1000), 1000 * 8);
}

// ---------------------------------------------------------------------------
// Forecast task
// ---------------------------------------------------------------------------

model::RitaConfig ForecastConfig() {
  model::RitaConfig config;
  config.input_channels = 3;
  config.input_length = 40;
  config.window = 5;
  config.stride = 5;
  config.num_classes = 0;
  config.encoder.dim = 16;
  config.encoder.num_layers = 1;
  config.encoder.num_heads = 2;
  config.encoder.ffn_hidden = 32;
  config.encoder.dropout = 0.0f;
  config.encoder.attention.kind = attn::AttentionKind::kGroup;
  config.encoder.attention.group.num_groups = 4;
  return config;
}

TEST(ForecastTest, TrainingReducesHorizonError) {
  data::HarOptions dopts;
  dopts.num_samples = 96;
  dopts.length = 40;
  dopts.num_classes = 3;
  dopts.noise = 0.05f;
  dopts.seed = 5;
  data::TimeseriesDataset ds = data::GenerateHar(dopts);

  Rng model_rng(6);
  model::RitaModel model(ForecastConfig(), &model_rng);
  train::TrainOptions topts;
  topts.epochs = 10;
  topts.batch_size = 16;
  topts.adamw.lr = 3e-3f;
  topts.seed = 7;
  train::Trainer trainer(&model, topts);

  const train::ImputationError before = trainer.EvalForecast(ds, 10);
  train::TrainResult result = trainer.TrainForecast(ds, 10);
  const train::ImputationError after = trainer.EvalForecast(ds, 10);
  EXPECT_LT(result.FinalLoss(), result.epochs.front().loss);
  EXPECT_LT(after.mse, before.mse);
  EXPECT_LT(after.mse, 0.2);
}

TEST(ForecastTest, HorizonMustBePositive) {
  data::HarOptions dopts;
  dopts.num_samples = 4;
  dopts.length = 40;
  data::TimeseriesDataset ds = data::GenerateHar(dopts);
  Rng model_rng(8);
  model::RitaModel model(ForecastConfig(), &model_rng);
  train::Trainer trainer(&model, train::TrainOptions{});
  EXPECT_DEATH(trainer.TrainForecast(ds, 0), "horizon");
}

// ---------------------------------------------------------------------------
// Anomaly detection
// ---------------------------------------------------------------------------

TEST(AnomalyDetectorTest, FlagsOutOfDistributionSeries) {
  // Normal corpus: low-noise periodic activity; anomalies: white noise.
  data::HarOptions normal_opts;
  normal_opts.num_samples = 140;
  normal_opts.length = 40;
  normal_opts.num_classes = 2;
  normal_opts.noise = 0.05f;
  normal_opts.seed = 9;
  data::TimeseriesDataset normal = data::GenerateHar(normal_opts);

  Rng model_rng(10);
  model::RitaModel model(ForecastConfig(), &model_rng);
  train::TrainOptions topts;
  topts.epochs = 10;
  topts.batch_size = 16;
  topts.adamw.lr = 3e-3f;
  topts.seed = 11;
  train::Trainer trainer(&model, topts);
  trainer.TrainImputation(normal);

  train::AnomalyDetectorOptions aopts;
  aopts.quantile = 0.9;
  train::AnomalyDetector detector(&model, aopts);
  detector.Calibrate(normal);
  EXPECT_TRUE(detector.calibrated());
  EXPECT_GT(detector.threshold(), 0.0);

  // Anomalies: pure noise in [0, 1] — unpredictable under masking.
  Rng noise_rng(12);
  Tensor anomalies = Tensor::RandUniform({20, 40, 3}, &noise_rng, 0.0f, 1.0f);
  const std::vector<bool> flags = detector.Detect(anomalies);
  int64_t flagged = 0;
  for (bool f : flags) flagged += f;
  EXPECT_GT(flagged, 14) << "most noise series should be flagged";

  // Held-out normal data mostly passes.
  data::HarOptions heldout_opts = normal_opts;
  heldout_opts.seed = 13;
  heldout_opts.num_samples = 20;
  data::TimeseriesDataset heldout = data::GenerateHar(heldout_opts);
  const std::vector<bool> normal_flags = detector.Detect(heldout.series);
  int64_t normal_flagged = 0;
  for (bool f : normal_flags) normal_flagged += f;
  EXPECT_LT(normal_flagged, 8);
}

TEST(AnomalyDetectorTest, DetectRequiresCalibration) {
  Rng model_rng(14);
  model::RitaModel model(ForecastConfig(), &model_rng);
  train::AnomalyDetector detector(&model, train::AnomalyDetectorOptions{});
  Tensor batch = Tensor::Zeros({1, 40, 3});
  EXPECT_DEATH(detector.Detect(batch), "Calibrate");
}

TEST(AnomalyDetectorTest, ScoresAreDeterministicPerConstruction) {
  // Vanilla attention: the forward pass is a pure function of the weights, so
  // two detectors with the same seed draw the same masks and score equally.
  // (Group attention re-seeds its k-means per call, so its scores only agree
  // up to grouping noise.)
  model::RitaConfig config = ForecastConfig();
  config.encoder.attention.kind = attn::AttentionKind::kVanilla;
  Rng model_rng(15);
  model::RitaModel model(config, &model_rng);
  Rng data_rng(16);
  Tensor batch = Tensor::RandUniform({4, 40, 3}, &data_rng, 0.0f, 1.0f);
  train::AnomalyDetector a(&model, train::AnomalyDetectorOptions{});
  train::AnomalyDetector b(&model, train::AnomalyDetectorOptions{});
  const auto sa = a.Score(batch);
  const auto sb = b.Score(batch);
  for (size_t i = 0; i < sa.size(); ++i) EXPECT_DOUBLE_EQ(sa[i], sb[i]);
}

}  // namespace
}  // namespace rita
