// Integration tests: end-to-end training convergence for every attention
// kind, pretrain-then-finetune transfer, adaptive scheduling during training,
// pipeline facade round trips.
#include <gtest/gtest.h>

#include <cstdio>

#include "data/generators.h"
#include "model/tst_model.h"
#include "train/pipeline.h"
#include "train/trainer.h"

namespace rita {
namespace train {
namespace {

// Easy 3-class dataset a tiny model can master quickly (the three classes sit
// in disjoint frequency bands, so the task stays learnable despite the
// generator's per-sample phase jitter and time warping).
data::TimeseriesDataset EasyDataset(int64_t n, uint64_t seed) {
  data::HarOptions opts;
  opts.num_samples = n;
  opts.length = 40;
  opts.channels = 3;
  opts.num_classes = 3;
  opts.noise = 0.05f;
  opts.seed = seed;
  return data::GenerateHar(opts);
}

model::RitaConfig TinyConfig(attn::AttentionKind kind) {
  model::RitaConfig config;
  config.input_channels = 3;
  config.input_length = 40;
  config.window = 5;
  config.stride = 5;
  config.num_classes = 3;
  config.encoder.dim = 16;
  config.encoder.num_layers = 1;
  config.encoder.num_heads = 2;
  config.encoder.ffn_hidden = 32;
  config.encoder.dropout = 0.0f;
  config.encoder.attention.kind = kind;
  config.encoder.attention.group.num_groups = 4;
  config.encoder.attention.performer_features = 16;
  config.encoder.attention.linformer_k = 4;
  config.encoder.attention.seq_len = config.NumTokens();
  return config;
}

TrainOptions FastTrain(int64_t epochs) {
  TrainOptions opts;
  opts.epochs = epochs;
  opts.batch_size = 16;
  opts.adamw.lr = 3e-3f;
  opts.adamw.weight_decay = 1e-4f;
  opts.seed = 5;
  return opts;
}

class TrainConvergenceTest : public ::testing::TestWithParam<attn::AttentionKind> {};

TEST_P(TrainConvergenceTest, ClassifierLearnsEasyTask) {
  Rng rng(1);
  data::TimeseriesDataset ds = EasyDataset(300, 21);
  data::SplitDataset split = data::TrainValSplit(ds, 0.8, &rng);

  Rng model_rng(2);
  model::RitaModel model(TinyConfig(GetParam()), &model_rng);
  Trainer trainer(&model, FastTrain(20));
  TrainResult result = trainer.TrainClassifier(split.train);

  // Loss decreased and validation accuracy clears chance by a wide margin.
  EXPECT_LT(result.FinalLoss(), result.epochs.front().loss);
  const double acc = trainer.EvalAccuracy(split.valid);
  EXPECT_GT(acc, 0.75) << attn::AttentionKindName(GetParam()) << " acc " << acc;
}

INSTANTIATE_TEST_SUITE_P(AllKinds, TrainConvergenceTest,
                         ::testing::Values(attn::AttentionKind::kVanilla,
                                           attn::AttentionKind::kGroup,
                                           attn::AttentionKind::kPerformer,
                                           attn::AttentionKind::kLinformer),
                         [](const ::testing::TestParamInfo<attn::AttentionKind>& info) {
                           return attn::AttentionKindName(info.param);
                         });

TEST(TrainerTest, ImputationLossDecreases) {
  data::TimeseriesDataset ds = EasyDataset(96, 33);
  Rng model_rng(3);
  model::RitaModel model(TinyConfig(attn::AttentionKind::kGroup), &model_rng);
  Trainer trainer(&model, FastTrain(8));
  TrainResult result = trainer.TrainImputation(ds);
  EXPECT_LT(result.FinalLoss(), 0.8 * result.epochs.front().loss);
  ImputationError err = trainer.EvalImputation(ds);
  EXPECT_LT(err.mse, 0.1);
  EXPECT_GT(err.mae, 0.0);
}

TEST(TrainerTest, PretrainingImprovesFewLabelAccuracy) {
  // The paper's Table 3 effect: cloze pretraining on unlabeled data improves
  // few-label finetuning. Tiny-scale runs are noisy, so compare seed-averaged
  // accuracies.
  double scratch_sum = 0.0, pretrained_sum = 0.0;
  const uint64_t kSeeds[] = {55, 56, 57};
  for (uint64_t seed : kSeeds) {
    Rng rng(seed);
    data::TimeseriesDataset full = EasyDataset(360, seed);
    data::SplitDataset split = data::TrainValSplit(full, 0.85, &rng);
    data::TimeseriesDataset few = data::FewLabelSubset(split.train, 3, &rng);

    Rng r1(seed + 100);
    model::RitaModel scratch(TinyConfig(attn::AttentionKind::kGroup), &r1);
    Trainer scratch_trainer(&scratch, FastTrain(12));
    scratch_trainer.TrainClassifier(few);
    scratch_sum += scratch_trainer.EvalAccuracy(split.valid);

    Rng r2(seed + 100);  // same init as the scratch model
    model::RitaModel pretrained(TinyConfig(attn::AttentionKind::kGroup), &r2);
    Trainer pre_trainer(&pretrained, FastTrain(12));
    pre_trainer.TrainImputation(split.train);
    Trainer fine_trainer(&pretrained, FastTrain(12));
    fine_trainer.TrainClassifier(few);
    pretrained_sum += fine_trainer.EvalAccuracy(split.valid);
  }
  const double acc_scratch = scratch_sum / 3.0;
  const double acc_pretrained = pretrained_sum / 3.0;
  EXPECT_GT(acc_pretrained + 0.02, acc_scratch)
      << "scratch " << acc_scratch << " vs pretrained " << acc_pretrained;
}

TEST(TrainerTest, AdaptiveSchedulerShrinksGroups) {
  data::TimeseriesDataset ds = EasyDataset(64, 77);
  Rng model_rng(8);
  model::RitaConfig config = TinyConfig(attn::AttentionKind::kGroup);
  config.encoder.attention.group.num_groups = 8;  // start large (= tokens)
  model::RitaModel model(config, &model_rng);

  TrainOptions opts = FastTrain(6);
  opts.adaptive_groups = true;
  opts.scheduler.epsilon = 3.0f;
  opts.scheduler.momentum = 1.0f;
  opts.scheduler.min_groups = 1;
  Trainer trainer(&model, opts);
  TrainResult result = trainer.TrainClassifier(ds);

  // avg_groups tracked per epoch and non-increasing overall.
  EXPECT_GT(result.epochs.front().avg_groups, 0.0);
  EXPECT_LE(result.epochs.back().avg_groups, result.epochs.front().avg_groups);
}

TEST(TrainerTest, BatchPlannerDrivesBatchSize) {
  data::TimeseriesDataset ds = EasyDataset(96, 88);

  core::EncoderShape shape;
  shape.layers = 1;
  shape.dim = 16;
  shape.heads = 2;
  shape.ffn_hidden = 32;
  shape.window = 5;
  shape.stride = 5;
  shape.channels = 3;
  shape.kind = attn::AttentionKind::kGroup;
  core::MemoryModelOptions mem;
  mem.capacity_bytes = 4.0 * (1 << 20);  // tiny "device" so planning matters
  core::MemoryModel memory(shape, mem);
  core::BatchPlannerOptions popts;
  popts.max_length = 40;
  core::BatchPlanner planner(memory, popts);
  Rng prng(9);
  planner.Calibrate(&prng);

  Rng model_rng(10);
  model::RitaModel model(TinyConfig(attn::AttentionKind::kGroup), &model_rng);
  TrainOptions opts = FastTrain(4);
  opts.adaptive_groups = true;
  opts.batch_planner = &planner;
  Trainer trainer(&model, opts);
  TrainResult result = trainer.TrainClassifier(ds);
  for (const auto& epoch : result.epochs) {
    EXPECT_GE(epoch.batch_size, 1);
    EXPECT_LE(epoch.batch_size, ds.size());
  }
}

TEST(TrainerTest, TimeInferenceIsPositiveAndFasterWithoutBackward) {
  data::TimeseriesDataset ds = EasyDataset(48, 99);
  Rng model_rng(11);
  model::RitaModel model(TinyConfig(attn::AttentionKind::kVanilla), &model_rng);
  // 3 epochs give the wall-clock comparison a ~3x margin over a single
  // inference pass; with 1 epoch scheduler noise on a loaded box could
  // occasionally invert it.
  Trainer trainer(&model, FastTrain(3));
  const double infer = trainer.TimeInference(ds, /*classification=*/true);
  EXPECT_GT(infer, 0.0);
  TrainResult result = trainer.TrainClassifier(ds);
  EXPECT_GT(result.total_seconds, infer);  // training includes backward
}

TEST(TrainerTest, TstModelTrainsThroughSameInterface) {
  Rng rng(12);
  data::TimeseriesDataset ds = EasyDataset(120, 13);
  data::SplitDataset split = data::TrainValSplit(ds, 0.8, &rng);
  model::TstConfig config;
  config.input_channels = 3;
  config.input_length = 40;
  config.num_classes = 3;
  config.encoder.dim = 16;
  config.encoder.num_layers = 1;
  config.encoder.num_heads = 2;
  config.encoder.ffn_hidden = 32;
  config.encoder.dropout = 0.0f;
  Rng model_rng(14);
  model::TstModel model(config, &model_rng);
  Trainer trainer(&model, FastTrain(10));
  trainer.TrainClassifier(split.train);
  EXPECT_GT(trainer.EvalAccuracy(split.valid), 0.6);
}

TEST(PipelineTest, EndToEndClassifyImputeForecastEmbed) {
  PipelineOptions options;
  options.model = TinyConfig(attn::AttentionKind::kGroup);
  options.train = FastTrain(20);
  options.seed = 15;
  RitaPipeline pipeline(options);

  Rng rng(16);
  data::TimeseriesDataset ds = EasyDataset(300, 17);
  data::SplitDataset split = data::TrainValSplit(ds, 0.8, &rng);
  pipeline.FitClassifier(split.train);
  EXPECT_GT(pipeline.Accuracy(split.valid), 0.7);

  // Predictions agree with accuracy contract.
  auto preds = pipeline.Predict(split.valid.series);
  EXPECT_EQ(preds.size(), static_cast<size_t>(split.valid.size()));

  // Imputation restores observed values untouched.
  Tensor sample = split.valid.Sample(0);
  Tensor corrupted = sample.Clone();
  corrupted.At({0, 10, 0}) = -1.0f;
  corrupted.At({0, 10, 1}) = -1.0f;
  corrupted.At({0, 10, 2}) = -1.0f;
  Tensor filled = pipeline.Impute(corrupted);
  EXPECT_FLOAT_EQ(filled.At({0, 5, 0}), sample.At({0, 5, 0}));
  EXPECT_NE(filled.At({0, 10, 0}), -1.0f);

  // Forecast emits the requested horizon.
  Tensor forecast = pipeline.Forecast(sample, 10);
  EXPECT_EQ(forecast.shape(), (Shape{1, 10, 3}));

  // Embeddings have the encoder width.
  Tensor emb = pipeline.Embed(split.valid.series);
  EXPECT_EQ(emb.shape(), (Shape{split.valid.size(), 16}));
}

TEST(PipelineTest, SaveLoadPreservesPredictions) {
  PipelineOptions options;
  options.model = TinyConfig(attn::AttentionKind::kVanilla);
  options.train = FastTrain(4);
  options.seed = 18;
  RitaPipeline a(options);
  data::TimeseriesDataset ds = EasyDataset(60, 19);
  a.FitClassifier(ds);

  const std::string path = ::testing::TempDir() + "/pipeline_ckpt.bin";
  ASSERT_TRUE(a.Save(path).ok());

  RitaPipeline b(options);
  ASSERT_TRUE(b.Load(path).ok());
  auto pa = a.Predict(ds.series);
  auto pb = b.Predict(ds.series);
  EXPECT_EQ(pa, pb);
  std::remove(path.c_str());
}

TEST(PipelineTest, PlanBatchesCalibratesPlanner) {
  PipelineOptions options;
  options.model = TinyConfig(attn::AttentionKind::kGroup);
  options.train = FastTrain(2);
  options.train.adaptive_groups = true;
  options.plan_batches = true;
  options.planner_samples = 16;
  options.seed = 20;
  RitaPipeline pipeline(options);
  data::TimeseriesDataset ds = EasyDataset(48, 21);
  TrainResult result = pipeline.FitClassifier(ds);
  EXPECT_EQ(result.epochs.size(), 2u);
}

}  // namespace
}  // namespace train
}  // namespace rita
