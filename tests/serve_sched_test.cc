// Scheduler-layer invariants for the layered serving stack, at two levels.
//
// Unit level (RequestQueue + Scheduler are passive, with time injected, so
// every policy decision is replayed deterministically): interactive requests
// overtake queued bulk, aged bulk is promoted past fresh interactive traffic
// (starvation-freedom), EDF ordering within a class, and the split
// backpressure accounting that reserves queue slots for interactive bursts.
//
// Engine level (run under RITA_SANITIZE=thread in CI): the priority policy
// holds through the real concurrent engine, result-cache hits are
// bit-identical to cold computes across 8 client threads, and one engine
// multiplexes two models with correct routing, per-model stats and
// fingerprint-separated cache entries.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <future>
#include <set>
#include <thread>
#include <vector>

#include "serve/inference_engine.h"

namespace rita {
namespace serve {
namespace {

model::RitaConfig SmallConfig() {
  model::RitaConfig config;
  config.input_channels = 2;
  config.input_length = 60;
  config.window = 5;
  config.stride = 5;
  config.num_classes = 4;
  config.encoder.dim = 16;
  config.encoder.num_layers = 2;
  config.encoder.num_heads = 2;
  config.encoder.ffn_hidden = 32;
  config.encoder.attention.kind = attn::AttentionKind::kGroup;
  config.encoder.attention.group.num_groups = 4;
  return config;
}

Tensor MakeSeries(int64_t t, int64_t c, uint64_t seed) {
  Rng rng(seed);
  return Tensor::RandNormal({t, c}, &rng);
}

bool BitEqual(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), sizeof(float) * a.numel()) == 0;
}

// ---------------------------------------------------------------------------
// Unit level: the queue and scheduler as passive policy, time injected.
// ---------------------------------------------------------------------------

/// A schedulable request whose series[0] is a recognizable marker.
ScheduledRequest MakeScheduled(float marker, Priority priority,
                               ServeClock::time_point enqueued,
                               ServeClock::time_point deadline = kNoDeadline,
                               int64_t length = 60, int64_t model_id = 0) {
  ScheduledRequest scheduled;
  scheduled.request.series = Tensor::Zeros({length, 2});
  scheduled.request.series.data()[0] = marker;
  scheduled.request.priority = priority;
  scheduled.request.deadline = deadline;
  scheduled.request.model_id = model_id;
  scheduled.enqueued = enqueued;
  return scheduled;
}

float Marker(const ScheduledRequest& scheduled) {
  return scheduled.request.series.data()[0];
}

std::set<float> Markers(const std::vector<ScheduledRequest>& batch) {
  std::set<float> markers;
  for (const ScheduledRequest& scheduled : batch) markers.insert(Marker(scheduled));
  return markers;
}

TEST(SchedulerTest, InteractiveOvertakesQueuedBulkSameBucket) {
  RequestQueue queue{RequestQueue::Options()};
  const auto now = ServeClock::now();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(queue.Admit(MakeScheduled(100.0f + i, Priority::kBatch, now)).ok());
  }
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(
        queue.Admit(MakeScheduled(200.0f + i, Priority::kInteractive, now)).ok());
  }

  Scheduler::Options options;
  options.max_micro_batch = 4;
  options.bulk_aging_ms = 1e9;  // aging out of the picture
  Scheduler scheduler(options);

  // One bucket (same model/task/length): the batch must carry both
  // interactive requests although six bulk requests were queued ahead.
  std::vector<ScheduledRequest> batch = scheduler.Assemble(queue, now, {});
  ASSERT_EQ(batch.size(), 4u);
  const std::set<float> markers = Markers(batch);
  EXPECT_TRUE(markers.count(200.0f) && markers.count(201.0f))
      << "interactive requests did not overtake queued bulk";
  EXPECT_EQ(queue.depth(Priority::kInteractive), 0);
  EXPECT_EQ(queue.depth(Priority::kBatch), 4);
}

TEST(SchedulerTest, InteractiveBucketPreemptsBulkBucket) {
  RequestQueue queue{RequestQueue::Options()};
  const auto now = ServeClock::now();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        queue.Admit(MakeScheduled(100.0f + i, Priority::kBatch, now, kNoDeadline, 60))
            .ok());
  }
  // Different length => different bucket: no coalescing with bulk possible.
  ASSERT_TRUE(
      queue.Admit(MakeScheduled(200.0f, Priority::kInteractive, now, kNoDeadline, 35))
          .ok());

  Scheduler::Options options;
  options.bulk_aging_ms = 1e9;
  Scheduler scheduler(options);
  std::vector<ScheduledRequest> batch = scheduler.Assemble(queue, now, {});
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(Marker(batch[0]), 200.0f);
}

TEST(SchedulerTest, AgedBulkIsPromotedPastFreshInteractive) {
  RequestQueue queue{RequestQueue::Options()};
  const auto now = ServeClock::now();
  const auto old_enqueue = now - std::chrono::milliseconds(1000);
  ASSERT_TRUE(queue.Admit(MakeScheduled(1.0f, Priority::kBatch, old_enqueue)).ok());
  ASSERT_TRUE(queue.Admit(MakeScheduled(2.0f, Priority::kInteractive, now)).ok());

  // Aging threshold exceeded: the bulk request competes as interactive with
  // an elapsed deadline, so it wins over the fresh interactive request.
  Scheduler::Options aged;
  aged.max_micro_batch = 1;
  aged.bulk_aging_ms = 500.0;
  std::vector<ScheduledRequest> first = Scheduler(aged).Assemble(queue, now, {});
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(Marker(first[0]), 1.0f) << "aged bulk request was starved";

  // Same shape, aging not yet reached: interactive wins.
  RequestQueue queue2{RequestQueue::Options()};
  ASSERT_TRUE(queue2.Admit(MakeScheduled(1.0f, Priority::kBatch, old_enqueue)).ok());
  ASSERT_TRUE(queue2.Admit(MakeScheduled(2.0f, Priority::kInteractive, now)).ok());
  Scheduler::Options fresh;
  fresh.max_micro_batch = 1;
  fresh.bulk_aging_ms = 1e9;
  std::vector<ScheduledRequest> second = Scheduler(fresh).Assemble(queue2, now, {});
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(Marker(second[0]), 2.0f);
}

TEST(SchedulerTest, EarliestDeadlineFirstWithinClass) {
  RequestQueue queue{RequestQueue::Options()};
  const auto now = ServeClock::now();
  ASSERT_TRUE(queue.Admit(MakeScheduled(0.5f, Priority::kInteractive, now)).ok());
  ASSERT_TRUE(queue
                  .Admit(MakeScheduled(3.0f, Priority::kInteractive, now,
                                       now + std::chrono::milliseconds(300)))
                  .ok());
  ASSERT_TRUE(queue
                  .Admit(MakeScheduled(1.0f, Priority::kInteractive, now,
                                       now + std::chrono::milliseconds(100)))
                  .ok());
  ASSERT_TRUE(queue
                  .Admit(MakeScheduled(2.0f, Priority::kInteractive, now,
                                       now + std::chrono::milliseconds(200)))
                  .ok());

  Scheduler::Options options;
  options.max_micro_batch = 1;
  Scheduler scheduler(options);
  // Deadline-bearing requests run earliest-first; the no-deadline request
  // (admitted first!) runs last within the class.
  for (float expected : {1.0f, 2.0f, 3.0f, 0.5f}) {
    std::vector<ScheduledRequest> batch = scheduler.Assemble(queue, now, {});
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(Marker(batch[0]), expected);
  }
  EXPECT_TRUE(queue.empty());
}

TEST(RequestQueueTest, SplitBackpressureKeepsInteractiveReserve) {
  RequestQueue::Options options;
  options.max_queue = 8;
  options.max_batch_queue = 6;
  RequestQueue queue(options);
  const auto now = ServeClock::now();

  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(queue.Admit(MakeScheduled(1.0f + i, Priority::kBatch, now)).ok());
  }
  // Bulk hits its own cap while the queue still has room...
  ScheduledRequest overflow = MakeScheduled(99.0f, Priority::kBatch, now);
  Status status = queue.Admit(std::move(overflow));
  EXPECT_EQ(status.code(), StatusCode::kOutOfMemory);
  // ...and the promise is returned intact on rejection (resolvable).
  overflow.promise.set_value(InferenceResponse{});

  // ...which the interactive class can still use.
  ASSERT_TRUE(queue.Admit(MakeScheduled(50.0f, Priority::kInteractive, now)).ok());
  ASSERT_TRUE(queue.Admit(MakeScheduled(51.0f, Priority::kInteractive, now)).ok());
  EXPECT_EQ(queue.depth(), 8);
  EXPECT_EQ(queue.depth(Priority::kInteractive), 2);
  EXPECT_EQ(queue.depth(Priority::kBatch), 6);

  // Total cap now binds for everyone.
  ScheduledRequest full = MakeScheduled(52.0f, Priority::kInteractive, now);
  EXPECT_EQ(queue.Admit(std::move(full)).code(), StatusCode::kOutOfMemory);
}

TEST(RequestQueueTest, BucketsPerModelTaskLength) {
  RequestQueue queue{RequestQueue::Options()};
  const auto now = ServeClock::now();
  ASSERT_TRUE(
      queue.Admit(MakeScheduled(1, Priority::kInteractive, now, kNoDeadline, 60, 0))
          .ok());
  ASSERT_TRUE(
      queue.Admit(MakeScheduled(2, Priority::kInteractive, now, kNoDeadline, 60, 1))
          .ok());
  ASSERT_TRUE(
      queue.Admit(MakeScheduled(3, Priority::kInteractive, now, kNoDeadline, 35, 0))
          .ok());
  ScheduledRequest embed = MakeScheduled(4, Priority::kInteractive, now);
  embed.request.task = ServeTask::kEmbed;
  ASSERT_TRUE(queue.Admit(std::move(embed)).ok());

  EXPECT_EQ(queue.buckets().size(), 4u) << "model/task/length must all split buckets";
  EXPECT_EQ(queue.DepthForModel(0), 3);
  EXPECT_EQ(queue.DepthForModel(1), 1);
}

// ---------------------------------------------------------------------------
// Engine level: the policy through the real concurrent engine (TSan in CI).
// ---------------------------------------------------------------------------

TEST(ServeSchedEngineTest, InteractiveOvertakesBulkThroughEngine) {
  model::RitaConfig config = SmallConfig();
  Rng rng(61);
  model::RitaModel source(config, &rng);
  FrozenModel frozen(source);

  InferenceEngineOptions options;
  options.num_workers = 1;
  options.max_micro_batch = 8;
  options.start_paused = true;  // deterministic: everything queues first
  options.bulk_aging_ms = 1e9;  // no promotion during this test
  options.cache_bytes = 0;      // all requests must compute
  InferenceEngine engine(&frozen, options);

  // Bulk backlog first (length 60), then an interactive burst in a different
  // length bucket (35) — the scheduler must run the burst first.
  std::vector<std::future<InferenceResponse>> bulk, interactive;
  for (int i = 0; i < 8; ++i) {
    InferenceRequest request;
    request.series = MakeSeries(60, 2, 700 + i);
    request.priority = Priority::kBatch;
    bulk.push_back(engine.Submit(std::move(request)));
  }
  for (int i = 0; i < 4; ++i) {
    InferenceRequest request;
    request.series = MakeSeries(35, 2, 800 + i);
    request.priority = Priority::kInteractive;
    interactive.push_back(engine.Submit(std::move(request)));
  }
  {
    const InferenceEngineStats loaded = engine.stats();
    EXPECT_EQ(loaded.queue_depth, 12);
    EXPECT_EQ(loaded.queue_depth_interactive, 4);
    EXPECT_EQ(loaded.queue_depth_batch, 8);
    EXPECT_EQ(loaded.in_flight_batches, 0);
  }
  engine.Resume();

  double max_interactive_queue = 0.0, min_bulk_queue = 1e18;
  for (auto& future : interactive) {
    InferenceResponse response = future.get();
    ASSERT_TRUE(response.status.ok());
    max_interactive_queue = std::max(max_interactive_queue, response.queue_ms);
  }
  for (auto& future : bulk) {
    InferenceResponse response = future.get();
    ASSERT_TRUE(response.status.ok());
    min_bulk_queue = std::min(min_bulk_queue, response.queue_ms);
  }
  // The single worker ran the interactive batch first, so every bulk request
  // (enqueued earlier, completed later) waited strictly longer.
  EXPECT_LT(max_interactive_queue, min_bulk_queue)
      << "bulk backlog was not overtaken by the interactive burst";
}

TEST(ServeSchedEngineTest, CacheHitsBitIdenticalAcrossEightThreads) {
  model::RitaConfig config = SmallConfig();
  Rng rng(67);
  model::RitaModel source(config, &rng);
  FrozenModel frozen(source);

  constexpr int kDistinct = 6;
  constexpr int kClients = 8;
  constexpr int kRoundsPerClient = 2;
  const int64_t t = 60, c = 2;

  // Cold references straight through the frozen model, no engine, no cache.
  std::vector<Tensor> series;
  std::vector<Tensor> cold;
  for (int i = 0; i < kDistinct; ++i) {
    series.push_back(MakeSeries(t, c, 900 + i));
    // Drop the batch axis: engine responses are per-request [num_classes].
    cold.push_back(frozen.ClassLogits(series.back().Reshape({1, t, c}))
                       .Reshape({config.num_classes}));
  }

  InferenceEngineOptions options;
  options.num_workers = 2;
  InferenceEngine engine(&frozen, options);

  // Warm the cache with one sequential pass (all misses, all computed)...
  for (int i = 0; i < kDistinct; ++i) {
    InferenceRequest request;
    request.series = series[i];
    InferenceResponse response = engine.Run(std::move(request));
    ASSERT_TRUE(response.status.ok());
    EXPECT_FALSE(response.cache_hit);
    EXPECT_TRUE(BitEqual(response.output, cold[i]));
  }

  // ...then hammer it with duplicates from 8 client threads. Every response
  // must be bit-identical to the cold compute, hit or not.
  constexpr int kTotal = kClients * kRoundsPerClient * kDistinct;
  std::vector<std::future<InferenceResponse>> futures(kTotal);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int client = 0; client < kClients; ++client) {
    clients.emplace_back([&, client] {
      for (int round = 0; round < kRoundsPerClient; ++round) {
        for (int i = 0; i < kDistinct; ++i) {
          const int idx = (client * kRoundsPerClient + round) * kDistinct + i;
          InferenceRequest request;
          request.series = series[i];
          futures[idx] = engine.Submit(std::move(request));
        }
      }
    });
  }
  for (auto& thread : clients) thread.join();

  for (int idx = 0; idx < kTotal; ++idx) {
    InferenceResponse response = futures[idx].get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_TRUE(response.cache_hit) << "warmed entry evicted or missed";
    EXPECT_TRUE(BitEqual(response.output, cold[idx % kDistinct]))
        << "cache replay diverged from the cold compute for request " << idx;
  }

  const InferenceEngineStats stats = engine.stats();
  EXPECT_EQ(stats.cache_hits, static_cast<uint64_t>(kTotal));
  EXPECT_EQ(stats.cache_misses, static_cast<uint64_t>(kDistinct));
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(kTotal + kDistinct));
  EXPECT_DOUBLE_EQ(stats.CacheHitRatio(),
                   static_cast<double>(kTotal) / (kTotal + kDistinct));
}

TEST(ServeSchedEngineTest, MultiModelRoutingStatsAndCacheSeparation) {
  model::RitaConfig config = SmallConfig();
  Rng rng_a(71), rng_b(73);
  model::RitaModel source_a(config, &rng_a);
  model::RitaModel source_b(config, &rng_b);
  FrozenModel frozen_a(source_a);
  FrozenModel frozen_b(source_b);

  // Fingerprints separate different weights and agree across equal replicas.
  FrozenModel frozen_a2(source_a);
  EXPECT_NE(frozen_a.Fingerprint(), frozen_b.Fingerprint());
  EXPECT_EQ(frozen_a.Fingerprint(), frozen_a2.Fingerprint());

  ModelRegistry registry;
  const int64_t id_a = registry.Register("prod", &frozen_a);
  const int64_t id_b = registry.Register("canary", &frozen_b);
  EXPECT_EQ(registry.Find("prod"), id_a);
  EXPECT_EQ(registry.Find("canary"), id_b);

  InferenceEngineOptions options;
  options.num_workers = 2;
  InferenceEngine engine(&registry, options);

  constexpr int kRequests = 6;
  const int64_t t = 60, c = 2;
  for (int i = 0; i < kRequests; ++i) {
    Tensor series = MakeSeries(t, c, 1000 + i);
    Tensor want_a = frozen_a.ClassLogits(series.Reshape({1, t, c}))
                        .Reshape({config.num_classes});
    Tensor want_b = frozen_b.ClassLogits(series.Reshape({1, t, c}))
                        .Reshape({config.num_classes});

    InferenceRequest to_a;
    to_a.series = series;
    to_a.model_id = id_a;
    InferenceResponse from_a = engine.Run(std::move(to_a));
    ASSERT_TRUE(from_a.status.ok());
    EXPECT_EQ(from_a.model_id, id_a);
    EXPECT_TRUE(BitEqual(from_a.output, want_a)) << "model A misrouted";

    // Same series bytes, different model: the cache must NOT alias — the
    // fingerprint in the key separates the entries.
    InferenceRequest to_b;
    to_b.series = series;
    to_b.model_id = id_b;
    InferenceResponse from_b = engine.Run(std::move(to_b));
    ASSERT_TRUE(from_b.status.ok());
    EXPECT_TRUE(BitEqual(from_b.output, want_b)) << "model B misrouted";
    EXPECT_FALSE(BitEqual(from_a.output, from_b.output));
  }

  // Replays hit per-model entries and stay separated.
  for (int i = 0; i < kRequests; ++i) {
    InferenceRequest replay;
    replay.series = MakeSeries(t, c, 1000 + i);
    replay.model_id = id_b;
    InferenceResponse response = engine.Run(std::move(replay));
    ASSERT_TRUE(response.status.ok());
    EXPECT_TRUE(response.cache_hit);
    EXPECT_TRUE(BitEqual(
        response.output,
        frozen_b.ClassLogits(MakeSeries(t, c, 1000 + i).Reshape({1, t, c}))
            .Reshape({config.num_classes})));
  }

  // Unknown model ids are invalid-rejections, counted in the split.
  InferenceRequest unknown;
  unknown.series = MakeSeries(t, c, 2000);
  unknown.model_id = 7;
  EXPECT_EQ(engine.Run(std::move(unknown)).status.code(),
            StatusCode::kInvalidArgument);

  const InferenceEngineStats total = engine.stats();
  EXPECT_EQ(total.rejected_invalid, 1u);
  EXPECT_EQ(total.completed, static_cast<uint64_t>(3 * kRequests));
  const InferenceEngineStats stats_a = engine.model_stats(id_a);
  const InferenceEngineStats stats_b = engine.model_stats(id_b);
  EXPECT_EQ(stats_a.completed, static_cast<uint64_t>(kRequests));
  EXPECT_EQ(stats_b.completed, static_cast<uint64_t>(2 * kRequests));
  EXPECT_EQ(stats_b.cache_hits, static_cast<uint64_t>(kRequests));
  EXPECT_EQ(stats_a.cache_hits, 0u);
}

}  // namespace
}  // namespace serve
}  // namespace rita
