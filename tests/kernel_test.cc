// Kernel-layer tests: scalar-vs-SIMD equivalence for every dispatched
// primitive across adversarial shapes (n=1, odd lengths, non-multiple-of-
// vector-width dims, -inf / denormal-heavy rows), bitwise fused-vs-unfused
// identity on the scalar backend, per-backend determinism across ThreadPool
// widths, and ULP pinning of the transcendental fast paths against libm.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include <algorithm>

#include "core/group_attention.h"
#include "linalg/kernels/kernels.h"
#include "tensor/quantized_tensor.h"
#include "tensor/tensor.h"
#include "util/execution_context.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace rita {
namespace kernels {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

// Distance in representable floats, sign-aware (0 means bit-identical).
int64_t UlpDiff(float a, float b) {
  if (a == b) return 0;
  if (std::isnan(a) || std::isnan(b)) return std::numeric_limits<int64_t>::max();
  int32_t ia, ib;
  std::memcpy(&ia, &a, 4);
  std::memcpy(&ib, &b, 4);
  // Map to a monotone integer line.
  if (ia < 0) ia = std::numeric_limits<int32_t>::min() - ia;
  if (ib < 0) ib = std::numeric_limits<int32_t>::min() - ib;
  return std::abs(static_cast<int64_t>(ia) - static_cast<int64_t>(ib));
}

void ExpectClose(const std::vector<float>& a, const std::vector<float>& b,
                 float rel_tol, const char* what) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    const float tol = rel_tol * std::max({1.0f, std::fabs(a[i]), std::fabs(b[i])});
    EXPECT_NEAR(a[i], b[i], tol) << what << " at " << i;
  }
}

// Adversarial row lengths: scalar tail only, exactly one vector, vector+tail,
// odd, prime, large non-multiple.
const int64_t kLens[] = {1, 2, 3, 7, 8, 9, 13, 16, 17, 31, 64, 100, 257};

std::vector<float> RandomVec(int64_t n, Rng* rng, float lo = -4.0f, float hi = 4.0f) {
  std::vector<float> v(n);
  for (int64_t i = 0; i < n; ++i) {
    v[i] = lo + (hi - lo) * static_cast<float>(rng->Uniform());
  }
  return v;
}

class KernelBackendsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!SimdAvailable()) GTEST_SKIP() << "no SIMD backend on this CPU/build";
  }
  void TearDown() override { SetBackendForTesting(Backend::kScalar); }
  const KernelTable& scalar() { return Table(Backend::kScalar); }
  const KernelTable& simd() { return Table(Backend::kSimd); }
};

TEST(KernelDispatchTest, BackendNamesAndTables) {
  EXPECT_STREQ(BackendName(Backend::kScalar), "scalar");
  EXPECT_STREQ(BackendName(Backend::kSimd), "simd");
  // The active table is one of the two backend tables.
  const KernelTable* active = &Active();
  EXPECT_TRUE(active == &Table(Backend::kScalar) || active == &Table(Backend::kSimd));
  if (!SimdAvailable()) {
    // kSimd falls back to scalar rather than crashing.
    EXPECT_EQ(&Table(Backend::kSimd), &Table(Backend::kScalar));
  }
}

TEST(KernelDispatchTest, SetBackendForTestingSwitchesActive) {
  SetBackendForTesting(Backend::kScalar);
  EXPECT_EQ(ActiveBackend(), Backend::kScalar);
  EXPECT_EQ(&Active(), &Table(Backend::kScalar));
  if (SimdAvailable()) {
    SetBackendForTesting(Backend::kSimd);
    EXPECT_EQ(ActiveBackend(), Backend::kSimd);
    EXPECT_EQ(&Active(), &Table(Backend::kSimd));
  }
  SetBackendForTesting(Backend::kScalar);
}

// --------------------------------------------------------------------------
// Scalar bit-identity pin: the scalar kernels ARE the historical loops.
// --------------------------------------------------------------------------

TEST(KernelScalarPinTest, SoftmaxMatchesHistoricalThreePass) {
  Rng rng(7);
  for (int64_t len : kLens) {
    const int64_t rows = 3;
    std::vector<float> in = RandomVec(rows * len, &rng);
    std::vector<float> got(rows * len), want(rows * len);
    Table(Backend::kScalar).softmax_rows(in.data(), got.data(), rows, len, 1.0f,
                                         nullptr);
    for (int64_t r = 0; r < rows; ++r) {
      const float* row = in.data() + r * len;
      float* orow = want.data() + r * len;
      float mx = row[0];
      for (int64_t i = 1; i < len; ++i) mx = std::max(mx, row[i]);
      float denom = 0.0f;
      for (int64_t i = 0; i < len; ++i) {
        const float e = std::exp(row[i] - mx);
        orow[i] = e;
        denom += e;
      }
      const float inv = 1.0f / denom;
      for (int64_t i = 0; i < len; ++i) orow[i] *= inv;
    }
    for (int64_t i = 0; i < rows * len; ++i) {
      EXPECT_EQ(got[i], want[i]) << "len=" << len << " i=" << i;
    }
  }
}

TEST(KernelScalarPinTest, TranscendentalsAreExactlyLibm) {
  Rng rng(11);
  std::vector<float> x = RandomVec(257, &rng, -10.0f, 10.0f);
  std::vector<float> y(x.size());
  const KernelTable& t = Table(Backend::kScalar);
  t.exp_array(x.data(), y.data(), x.size());
  for (size_t i = 0; i < x.size(); ++i) EXPECT_EQ(y[i], std::exp(x[i]));
  t.tanh_array(x.data(), y.data(), x.size());
  for (size_t i = 0; i < x.size(); ++i) EXPECT_EQ(y[i], std::tanh(x[i]));
  t.sigmoid_array(x.data(), y.data(), x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(y[i], 1.0f / (1.0f + std::exp(-x[i])));
  }
}

// --------------------------------------------------------------------------
// Scalar vs SIMD equivalence, adversarial shapes
// --------------------------------------------------------------------------

TEST_F(KernelBackendsTest, SoftmaxRowsEquivalence) {
  Rng rng(21);
  for (int64_t len : kLens) {
    for (float scale : {1.0f, 0.25f}) {
      const int64_t rows = 5;
      std::vector<float> in = RandomVec(rows * len, &rng, -30.0f, 30.0f);
      // Adversarial rows: -inf-masked entries (softmax over a partial row) and
      // denormal-scale inputs. Row 0 keeps index 0 finite, rest -inf.
      if (len > 1) {
        for (int64_t j = 1; j < len; j += 2) in[j] = -kInf;
        for (int64_t j = 0; j < len; ++j) {
          in[3 * len + j] = 1e-40f * static_cast<float>(j);  // denormals
        }
      }
      std::vector<float> a(rows * len), b(rows * len);
      std::vector<float> w = RandomVec(len, &rng, 1.0f, 5.0f);  // group counts
      const float* weight_cases[] = {nullptr, w.data()};
      for (const float* weights : weight_cases) {
        scalar().softmax_rows(in.data(), a.data(), rows, len, scale, weights);
        simd().softmax_rows(in.data(), b.data(), rows, len, scale, weights);
        ExpectClose(a, b, 2e-5f, "softmax_rows");
        // Each row sums to ~1 under unit weights.
      }
    }
  }
}

TEST_F(KernelBackendsTest, SoftmaxRowsInPlaceMatchesOutOfPlace) {
  Rng rng(22);
  for (const Backend backend : {Backend::kScalar, Backend::kSimd}) {
    const KernelTable& t = Table(backend);
    for (int64_t len : {1LL, 9LL, 64LL, 100LL}) {
      std::vector<float> in = RandomVec(4 * len, &rng);
      std::vector<float> out(4 * len);
      std::vector<float> inplace = in;
      t.softmax_rows(in.data(), out.data(), 4, len, 0.5f, nullptr);
      t.softmax_rows(inplace.data(), inplace.data(), 4, len, 0.5f, nullptr);
      for (int64_t i = 0; i < 4 * len; ++i) EXPECT_EQ(out[i], inplace[i]);
    }
  }
}

TEST_F(KernelBackendsTest, SoftmaxBackwardEquivalence) {
  Rng rng(23);
  for (int64_t len : kLens) {
    const int64_t rows = 4;
    std::vector<float> logits = RandomVec(rows * len, &rng);
    std::vector<float> y(rows * len), g = RandomVec(rows * len, &rng);
    scalar().softmax_rows(logits.data(), y.data(), rows, len, 1.0f, nullptr);
    std::vector<float> a(rows * len), b(rows * len);
    for (float scale : {1.0f, 0.125f}) {
      scalar().softmax_backward_rows(y.data(), g.data(), a.data(), rows, len, scale);
      simd().softmax_backward_rows(y.data(), g.data(), b.data(), rows, len, scale);
      ExpectClose(a, b, 2e-5f, "softmax_backward_rows");
    }
  }
}

TEST_F(KernelBackendsTest, LogSoftmaxBackwardEquivalence) {
  Rng rng(24);
  for (int64_t len : kLens) {
    const int64_t rows = 4;
    std::vector<float> log_y = RandomVec(rows * len, &rng, -12.0f, 0.0f);
    std::vector<float> g = RandomVec(rows * len, &rng);
    std::vector<float> a(rows * len), b(rows * len);
    scalar().logsoftmax_backward_rows(log_y.data(), g.data(), a.data(), rows, len);
    simd().logsoftmax_backward_rows(log_y.data(), g.data(), b.data(), rows, len);
    ExpectClose(a, b, 2e-5f, "logsoftmax_backward_rows");
  }
}

TEST_F(KernelBackendsTest, GemmEquivalenceAllTransposes) {
  Rng rng(25);
  // Shapes chosen to hit every micro-kernel branch: full 4x16 tiles, 8-wide
  // column tails, scalar column tails, single rows/cols, k tails.
  const int64_t shapes[][3] = {{1, 1, 1},   {1, 16, 8},  {3, 5, 7},  {4, 16, 32},
                               {5, 17, 9},  {7, 33, 13}, {8, 24, 1}, {13, 40, 19},
                               {16, 64, 64}};
  for (const auto& s : shapes) {
    const int64_t m = s[0], n = s[1], k = s[2];
    for (bool ta : {false, true}) {
      for (bool tb : {false, true}) {
        std::vector<float> a =
            RandomVec(ta ? k * m : m * k, &rng, -1.5f, 1.5f);
        std::vector<float> b =
            RandomVec(tb ? n * k : k * n, &rng, -1.5f, 1.5f);
        std::vector<float> c1(m * n), c2(m * n);
        scalar().gemm(a.data(), b.data(), c1.data(), m, n, k, ta, tb, 0, m);
        simd().gemm(a.data(), b.data(), c2.data(), m, n, k, ta, tb, 0, m);
        ExpectClose(c1, c2, 1e-4f, "gemm");
        // Row-range sharding must agree with the full call.
        if (m > 2) {
          std::vector<float> c3(m * n);
          simd().gemm(a.data(), b.data(), c3.data(), m, n, k, ta, tb, 0, 2);
          simd().gemm(a.data(), b.data(), c3.data(), m, n, k, ta, tb, 2, m);
          for (int64_t i = 0; i < m * n; ++i) EXPECT_EQ(c2[i], c3[i]);
        }
      }
    }
  }
}

TEST_F(KernelBackendsTest, ElementwiseVectorKernelsEquivalence) {
  Rng rng(26);
  for (int64_t n : kLens) {
    std::vector<float> x = RandomVec(n, &rng);
    std::vector<float> y1 = RandomVec(n, &rng), y2 = y1;
    scalar().axpy(y1.data(), x.data(), n, 1.75f);
    simd().axpy(y2.data(), x.data(), n, 1.75f);
    ExpectClose(y1, y2, 1e-6f, "axpy");

    y2 = y1;
    scalar().scale(y1.data(), n, 0.37f);
    simd().scale(y2.data(), n, 0.37f);
    for (int64_t i = 0; i < n; ++i) EXPECT_EQ(y1[i], y2[i]);  // mul is exact

    y2 = y1;
    scalar().add(y1.data(), x.data(), n);
    simd().add(y2.data(), x.data(), n);
    for (int64_t i = 0; i < n; ++i) EXPECT_EQ(y1[i], y2[i]);  // add is exact

    std::vector<double> d1(n, 0.5), d2(n, 0.5);
    scalar().accumulate_f64(d1.data(), x.data(), n);
    simd().accumulate_f64(d2.data(), x.data(), n);
    for (int64_t i = 0; i < n; ++i) EXPECT_EQ(d1[i], d2[i]);  // f64 add exact
  }
}

TEST_F(KernelBackendsTest, DistanceKernelsEquivalence) {
  Rng rng(27);
  for (int64_t d : {1LL, 3LL, 8LL, 15LL, 16LL, 33LL}) {
    const int64_t rows = 9;
    std::vector<float> pts = RandomVec(rows * d, &rng);
    std::vector<float> n1(rows), n2(rows);
    scalar().row_sqnorms(pts.data(), n1.data(), rows, d);
    simd().row_sqnorms(pts.data(), n2.data(), rows, d);
    ExpectClose(n1, n2, 1e-5f, "row_sqnorms");

    std::vector<float> center = RandomVec(d, &rng);
    std::vector<float> d1(rows), d2(rows);
    scalar().sqdist_to_point(pts.data(), center.data(), d1.data(), rows, d);
    simd().sqdist_to_point(pts.data(), center.data(), d2.data(), rows, d);
    ExpectClose(d1, d2, 1e-5f, "sqdist_to_point");

    std::vector<float> row1 = RandomVec(rows, &rng), row2 = row1;
    std::vector<float> b2 = RandomVec(rows, &rng, 0.0f, 4.0f);
    scalar().sqdist_combine(row1.data(), b2.data(), 1.3f, rows);
    simd().sqdist_combine(row2.data(), b2.data(), 1.3f, rows);
    ExpectClose(row1, row2, 1e-5f, "sqdist_combine");
  }
}

// --------------------------------------------------------------------------
// Fused attention chain
// --------------------------------------------------------------------------

// On ONE backend, the fused tile driver must reproduce the unfused
// full-matrix pipeline exactly: row tiling only regroups calls to per-row-
// independent kernels. On the scalar backend this is the bit-identity
// guarantee that lets inference take the fused path.
TEST_F(KernelBackendsTest, FusedChainBitwiseMatchesUnfusedPerBackend) {
  Rng rng(31);
  ExecutionContext context;
  for (const Backend backend : {Backend::kScalar, Backend::kSimd}) {
    SetBackendForTesting(backend);
    const KernelTable& t = Table(backend);
    // n spans below/at/above the 64-row tile; ng/d off vector widths.
    for (int64_t n : {1LL, 63LL, 64LL, 65LL, 200LL}) {
      const int64_t ng = 11, d = 19;
      std::vector<float> q = RandomVec(n * d, &rng);
      std::vector<float> keys = RandomVec(ng * d, &rng);
      std::vector<float> values = RandomVec(ng * d, &rng);
      std::vector<float> w = RandomVec(ng, &rng, 1.0f, 6.0f);
      const float scale = 0.31f;

      std::vector<float> scores(n * ng), want(n * d), got(n * d);
      t.gemm(q.data(), keys.data(), scores.data(), n, ng, d, false, true, 0, n);
      t.softmax_rows(scores.data(), scores.data(), n, ng, scale, w.data());
      t.gemm(scores.data(), values.data(), want.data(), n, d, ng, false, false, 0, n);

      ScratchArena::Lease scratch = context.arena()->Acquire();
      FusedScoreSoftmaxWeightedSum(q.data(), keys.data(), values.data(), got.data(),
                                   n, ng, d, scale, w.data(), &scratch);
      for (int64_t i = 0; i < n * d; ++i) {
        ASSERT_EQ(want[i], got[i])
            << BackendName(backend) << " n=" << n << " i=" << i;
      }
    }
  }
}

// Group attention forward: inference output must be identical whether the
// backward graph is recorded (unfused training path) or not (fused inference
// path), per backend; and bit-identical across ThreadPool widths.
TEST_F(KernelBackendsTest, GroupAttentionFusedInferenceMatchesTrainingForward) {
  for (const Backend backend : {Backend::kScalar, Backend::kSimd}) {
    SetBackendForTesting(backend);
    const int64_t bh = 3, n = 70, d = 16;
    Rng data_rng(5);
    Tensor q = Tensor::RandNormal({bh, n, d}, &data_rng);
    Tensor k = Tensor::RandNormal({bh, n, d}, &data_rng);
    Tensor v = Tensor::RandNormal({bh, n, d}, &data_rng);
    core::GroupAttentionOptions opts;
    opts.num_groups = 12;
    opts.kmeans_iters = 2;

    auto run = [&](bool with_grad) {
      Rng mech_rng(99);
      core::GroupAttentionMechanism mech(d, opts, &mech_rng);
      ag::Variable vq(q, with_grad), vk(k, with_grad), vv(v, with_grad);
      if (!with_grad) {
        ag::NoGradGuard guard;
        return mech.Forward(vq, vk, vv).data();
      }
      return mech.Forward(vq, vk, vv).data();
    };
    const Tensor trained = run(true);
    const Tensor inferred = run(false);
    for (int64_t i = 0; i < trained.numel(); ++i) {
      ASSERT_EQ(trained.data()[i], inferred.data()[i])
          << BackendName(backend) << " i=" << i;
    }
  }
}

TEST_F(KernelBackendsTest, GroupAttentionDeterministicAcrossPoolWidths) {
  for (const Backend backend : {Backend::kScalar, Backend::kSimd}) {
    SetBackendForTesting(backend);
    const int64_t bh = 4, n = 96, d = 16;
    Rng data_rng(17);
    Tensor q = Tensor::RandNormal({bh, n, d}, &data_rng);
    Tensor k = Tensor::RandNormal({bh, n, d}, &data_rng);
    Tensor v = Tensor::RandNormal({bh, n, d}, &data_rng);
    core::GroupAttentionOptions opts;
    opts.num_groups = 10;
    opts.kmeans_iters = 2;

    Tensor reference;
    for (int width : {1, 2, 4}) {
      ThreadPool pool(width);
      ExecutionContext context(&pool);
      Rng mech_rng(42);
      core::GroupAttentionMechanism mech(d, opts, &mech_rng);
      mech.set_execution_context(&context);
      ag::NoGradGuard guard;
      Tensor out = mech.Forward(ag::Variable(q), ag::Variable(k), ag::Variable(v)).data();
      if (width == 1) {
        reference = out;
        continue;
      }
      for (int64_t i = 0; i < out.numel(); ++i) {
        ASSERT_EQ(reference.data()[i], out.data()[i])
            << BackendName(backend) << " width=" << width << " i=" << i;
      }
    }
  }
}

// --------------------------------------------------------------------------
// ULP pinning of the SIMD transcendental fast paths vs libm
// --------------------------------------------------------------------------

TEST_F(KernelBackendsTest, SimdTranscendentalUlpDrift) {
  // Dense sweep over the numerically interesting range plus edge cases.
  std::vector<float> x;
  for (float v = -20.0f; v <= 20.0f; v += 0.009f) x.push_back(v);
  x.insert(x.end(), {0.0f, -0.0f, 1e-30f, -1e-30f, 1e-38f, -1e-38f, 80.0f, -80.0f,
                     100.0f, -100.0f, -kInf});
  std::vector<float> y(x.size());

  simd().exp_array(x.data(), y.data(), x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    const float want = std::exp(x[i]);
    if (want > 0.0f && want < std::numeric_limits<float>::max() &&
        std::fpclassify(want) == FP_NORMAL) {
      EXPECT_LE(UlpDiff(y[i], want), 8) << "exp(" << x[i] << ")";
    } else if (std::isinf(want)) {
      EXPECT_EQ(y[i], want) << "exp(" << x[i] << ") overflow";
    } else {
      EXPECT_NEAR(y[i], want, 1e-37f) << "exp(" << x[i] << ")";
    }
  }
  EXPECT_EQ(y.back(), 0.0f) << "exp(-inf) must be exactly 0";

  simd().tanh_array(x.data(), y.data(), x.size());
  for (size_t i = 0; i + 1 < x.size(); ++i) {
    EXPECT_LE(UlpDiff(y[i], std::tanh(x[i])), 16) << "tanh(" << x[i] << ")";
  }

  simd().sigmoid_array(x.data(), y.data(), x.size());
  for (size_t i = 0; i + 1 < x.size(); ++i) {
    const float want = 1.0f / (1.0f + std::exp(-x[i]));
    if (want >= 1e-30f) {
      EXPECT_LE(UlpDiff(y[i], want), 16) << "sigmoid(" << x[i] << ")";
    } else {
      EXPECT_NEAR(y[i], want, 1e-37f) << "sigmoid(" << x[i] << ")";
    }
  }

  // Gelu's negative tail cancels catastrophically in ANY single-precision
  // formula, so pin ULP where the magnitude is sane and absolute error below.
  simd().gelu_array(x.data(), y.data(), x.size());
  constexpr float kC = 0.7978845608f;
  for (size_t i = 0; i + 1 < x.size(); ++i) {
    const float v = x[i];
    const float want = 0.5f * v * (1.0f + std::tanh(kC * (v + 0.044715f * v * v * v)));
    if (std::fabs(want) > 1e-4f) {
      EXPECT_LE(UlpDiff(y[i], want), 64) << "gelu(" << v << ")";
    } else {
      EXPECT_NEAR(y[i], want, 1e-6f) << "gelu(" << v << ")";
    }
  }
}

// Each backend is a pure function: identical inputs give identical outputs
// across repeated calls (no internal state, threading, or RNG).
TEST_F(KernelBackendsTest, KernelsAreDeterministic) {
  Rng rng(41);
  const int64_t rows = 7, len = 100;
  std::vector<float> in = RandomVec(rows * len, &rng);
  for (const Backend backend : {Backend::kScalar, Backend::kSimd}) {
    const KernelTable& t = Table(backend);
    std::vector<float> a(rows * len), b(rows * len);
    t.softmax_rows(in.data(), a.data(), rows, len, 0.7f, nullptr);
    t.softmax_rows(in.data(), b.data(), rows, len, 0.7f, nullptr);
    for (int64_t i = 0; i < rows * len; ++i) EXPECT_EQ(a[i], b[i]);
    t.exp_array(in.data(), a.data(), rows * len);
    t.exp_array(in.data(), b.data(), rows * len);
    for (int64_t i = 0; i < rows * len; ++i) EXPECT_EQ(a[i], b[i]);
  }
}

// --------------------------------------------------------------------------
// Quantized weight storage + int8 / bf16 GEMM kernels
// --------------------------------------------------------------------------

float FloatFromBits(uint32_t bits) {
  float f;
  std::memcpy(&f, &bits, 4);
  return f;
}

TEST(QuantizedTensorTest, Int8PerChannelScaleRecoveryAndRoundTrip) {
  Rng rng(50);
  const int64_t k = 13, n = 9;
  Tensor w({k, n});
  std::vector<float> amax(n, 0.0f);
  for (int64_t i = 0; i < k * n; ++i) {
    w.data()[i] = -1.5f + 3.0f * static_cast<float>(rng.Uniform());
  }
  for (int64_t kk = 0; kk < k; ++kk) {
    for (int64_t j = 0; j < n; ++j) {
      amax[j] = std::max(amax[j], std::fabs(w.data()[kk * n + j]));
    }
  }

  QuantizedTensor q = QuantizedTensor::QuantizeInt8(w);
  EXPECT_EQ(q.precision(), Precision::kInt8);
  EXPECT_EQ(q.rows(), k);
  EXPECT_EQ(q.cols(), n);
  // Per-channel scale recovery: exactly amax / 127 per column.
  for (int64_t j = 0; j < n; ++j) {
    EXPECT_EQ(q.scales()[j], amax[j] / 127.0f) << "column " << j;
  }
  // Round trip: every entry within half a quantization step of its source,
  // and col_sums really are the payload column sums.
  Tensor back = q.Dequantize();
  std::vector<int32_t> sums(n, 0);
  for (int64_t kk = 0; kk < k; ++kk) {
    for (int64_t j = 0; j < n; ++j) {
      EXPECT_NEAR(back.data()[kk * n + j], w.data()[kk * n + j],
                  0.5f * q.scales()[j] + 1e-6f);
      sums[j] += q.int8_data()[kk * n + j];
    }
  }
  for (int64_t j = 0; j < n; ++j) EXPECT_EQ(q.col_sums()[j], sums[j]);
  // Footprint: 1-byte payload + fp32 scale + int32 col_sum per column.
  EXPECT_EQ(q.WeightBytes(), k * n + 4 * n + 4 * n);
}

TEST(QuantizedTensorTest, Int8SaturationEdgesAndZeroColumns) {
  // Column 0: extremes map to exactly +-127 (never -128). Column 1: all
  // zeros -> zero scale, zero payload, and the GEMM emits exact 0.0f.
  const int64_t k = 4, n = 2;
  Tensor w({k, n});
  const float col0[k] = {3.0f, -3.0f, 1.5f, -0.75f};
  for (int64_t kk = 0; kk < k; ++kk) {
    w.data()[kk * n + 0] = col0[kk];
    w.data()[kk * n + 1] = 0.0f;
  }
  QuantizedTensor q = QuantizedTensor::QuantizeInt8(w);
  EXPECT_EQ(q.int8_data()[0 * n + 0], 127);
  EXPECT_EQ(q.int8_data()[1 * n + 0], -127);
  for (int64_t i = 0; i < k * n; ++i) {
    EXPECT_GE(q.int8_data()[i], -127) << "-128 must never be emitted";
    EXPECT_LE(q.int8_data()[i], 127);
  }
  EXPECT_EQ(q.scales()[1], 0.0f);
  EXPECT_EQ(q.col_sums()[1], 0);
  for (int64_t kk = 0; kk < k; ++kk) EXPECT_EQ(q.int8_data()[kk * n + 1], 0);

  Rng rng(51);
  std::vector<float> a = RandomVec(3 * k, &rng);
  std::vector<float> c(3 * n, -1.0f);
  Table(Backend::kScalar)
      .gemm_i8(a.data(), q.int8_data(), q.scales(), q.col_sums(), c.data(), 3,
               n, k, 0, 3);
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(c[i * n + 1], 0.0f) << "zero column must dequantize to exact 0";
  }
}

TEST(QuantizedTensorTest, Bf16RoundTripIsRoundToNearestEven) {
  EXPECT_EQ(Bf16FromFloat(1.0f), 0x3F80u);
  EXPECT_EQ(Bf16ToFloat(0x3F80u), 1.0f);
  EXPECT_EQ(Bf16FromFloat(0.0f), 0x0000u);
  EXPECT_EQ(Bf16FromFloat(-2.0f), 0xC000u);
  // Exactly-halfway mantissas round to the even bf16 neighbour: down when
  // the kept LSB is already 0, up when it is 1.
  EXPECT_EQ(Bf16FromFloat(FloatFromBits(0x3F808000u)), 0x3F80u);
  EXPECT_EQ(Bf16FromFloat(FloatFromBits(0x3F818000u)), 0x3F82u);
  // Just above halfway always rounds up.
  EXPECT_EQ(Bf16FromFloat(FloatFromBits(0x3F808001u)), 0x3F81u);
  // Widening then re-rounding is the identity on every finite bf16 payload.
  Rng rng(52);
  for (int trial = 0; trial < 1000; ++trial) {
    const uint16_t h =
        static_cast<uint16_t>(rng.Uniform() * 65535.0) & 0x7F7Fu;  // finite
    EXPECT_EQ(Bf16FromFloat(Bf16ToFloat(h)), h);
  }
  // Relative error of one round trip is bounded by the 8-bit mantissa.
  for (int trial = 0; trial < 1000; ++trial) {
    const float x = -8.0f + 16.0f * static_cast<float>(rng.Uniform());
    const float y = Bf16ToFloat(Bf16FromFloat(x));
    EXPECT_NEAR(y, x, std::fabs(x) / 256.0f + 1e-38f);
  }
}

// The int8 GEMM is bit-identical across backends BY DESIGN (shared
// activation quantizer, exact int32 accumulation, identical epilogue
// expression), so this gate is EXPECT_EQ, not a tolerance: any maddubs lane
// mistake, tail mishandling, or epilogue reassociation fails loudly.
TEST_F(KernelBackendsTest, GemmInt8ScalarVsSimdBitIdentical) {
  Rng rng(53);
  // Shapes hit: 16-col blocks, <16 tails, odd k (the zero-padded final
  // maddubs pair), k=1, single rows, and row sharding.
  const int64_t shapes[][3] = {{1, 1, 1},   {2, 16, 8},  {3, 17, 7},
                               {4, 16, 9},  {5, 33, 16}, {3, 5, 3},
                               {8, 40, 31}, {2, 15, 2},  {7, 64, 24}};
  for (const auto& s : shapes) {
    const int64_t m = s[0], n = s[1], k = s[2];
    Tensor w({k, n});
    for (int64_t i = 0; i < k * n; ++i) {
      w.data()[i] = -2.0f + 4.0f * static_cast<float>(rng.Uniform());
    }
    QuantizedTensor q = QuantizedTensor::QuantizeInt8(w);
    // Asymmetric activation range forces a nonzero zero point, exercising
    // the col_sums correction in both epilogues.
    std::vector<float> a = RandomVec(m * k, &rng, -1.0f, 5.0f);
    std::vector<float> c1(m * n), c2(m * n);
    scalar().gemm_i8(a.data(), q.int8_data(), q.scales(), q.col_sums(),
                     c1.data(), m, n, k, 0, m);
    simd().gemm_i8(a.data(), q.int8_data(), q.scales(), q.col_sums(),
                   c2.data(), m, n, k, 0, m);
    for (int64_t i = 0; i < m * n; ++i) {
      EXPECT_EQ(c1[i], c2[i]) << "m=" << m << " n=" << n << " k=" << k
                              << " at " << i;
    }
    if (m > 2) {
      std::vector<float> c3(m * n);
      simd().gemm_i8(a.data(), q.int8_data(), q.scales(), q.col_sums(),
                     c3.data(), m, n, k, 0, 2);
      simd().gemm_i8(a.data(), q.int8_data(), q.scales(), q.col_sums(),
                     c3.data(), m, n, k, 2, m);
      for (int64_t i = 0; i < m * n; ++i) EXPECT_EQ(c2[i], c3[i]);
    }
  }
}

// On an integer lattice the whole pipeline is exact: activations spanning
// [-64, 63] quantize with inv = 1 (zero point 64), weights with per-column
// amax 127 quantize with scale 1 — so both backends must produce the exact
// integer dot products as floats, proving the zero-point correction and the
// per-channel dequantization epilogue introduce no error of their own.
TEST_F(KernelBackendsTest, GemmInt8ExactOnIntegerLattice) {
  Rng rng(54);
  const int64_t m = 4, n = 19, k = 12;
  std::vector<float> a(m * k);
  for (int64_t i = 0; i < m; ++i) {
    a[i * k] = -64.0f;  // pin the row range to exactly [-64, 63]
    a[i * k + 1] = 63.0f;
    for (int64_t kk = 2; kk < k; ++kk) {
      a[i * k + kk] =
          static_cast<float>(static_cast<int>(rng.Uniform() * 128.0) - 64);
    }
  }
  Tensor w({k, n});
  for (int64_t j = 0; j < n; ++j) {
    w.data()[0 * n + j] = (j % 2 == 0) ? 127.0f : -127.0f;  // pin amax
    for (int64_t kk = 1; kk < k; ++kk) {
      w.data()[kk * n + j] =
          static_cast<float>(static_cast<int>(rng.Uniform() * 255.0) - 127);
    }
  }
  QuantizedTensor q = QuantizedTensor::QuantizeInt8(w);
  for (const Backend backend : {Backend::kScalar, Backend::kSimd}) {
    std::vector<float> c(m * n);
    Table(backend).gemm_i8(a.data(), q.int8_data(), q.scales(), q.col_sums(),
                           c.data(), m, n, k, 0, m);
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        double want = 0.0;
        for (int64_t kk = 0; kk < k; ++kk) {
          want += static_cast<double>(a[i * k + kk]) *
                  static_cast<double>(w.data()[kk * n + j]);
        }
        EXPECT_EQ(c[i * n + j], static_cast<float>(want))
            << BackendName(backend) << " at (" << i << "," << j << ")";
      }
    }
  }
}

TEST_F(KernelBackendsTest, GemmBf16MatchesDequantizedReference) {
  Rng rng(55);
  const int64_t shapes[][3] = {{1, 1, 1},  {2, 16, 8},  {3, 17, 7},
                               {5, 33, 16}, {8, 40, 31}, {4, 15, 9}};
  for (const auto& s : shapes) {
    const int64_t m = s[0], n = s[1], k = s[2];
    Tensor w({k, n});
    for (int64_t i = 0; i < k * n; ++i) {
      w.data()[i] = -1.5f + 3.0f * static_cast<float>(rng.Uniform());
    }
    QuantizedTensor q = QuantizedTensor::QuantizeBf16(w);
    Tensor wide = q.Dequantize();
    std::vector<float> a = RandomVec(m * k, &rng, -1.5f, 1.5f);
    std::vector<float> ref(m * n), c1(m * n), c2(m * n);
    // The scalar bf16 kernel mirrors the fp32 NN loop with exact widening,
    // so it must match an fp32 GEMM over the widened weights bit for bit.
    scalar().gemm(a.data(), wide.data(), ref.data(), m, n, k, false, false, 0, m);
    scalar().gemm_bf16(a.data(), q.bf16_data(), c1.data(), m, n, k, 0, m);
    for (int64_t i = 0; i < m * n; ++i) EXPECT_EQ(ref[i], c1[i]);
    // The AVX2 kernel uses FMA tiling: tolerance-gated like the fp32 GEMM.
    simd().gemm_bf16(a.data(), q.bf16_data(), c2.data(), m, n, k, 0, m);
    ExpectClose(c1, c2, 1e-4f, "gemm_bf16");
  }
}

}  // namespace
}  // namespace kernels
}  // namespace rita
