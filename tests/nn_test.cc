// Tests for the NN layer library: module registry, layers, optimisers,
// LR schedules and checkpoint round-trips.
#include <gtest/gtest.h>

#include <cstdio>

#include "nn/checkpoint.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "tensor/tensor_ops.h"

namespace rita {
namespace nn {
namespace {

class ToyModule : public Module {
 public:
  explicit ToyModule(Rng* rng) : inner_(3, 2, rng) {
    w_ = RegisterParameter("w", Tensor::Ones({2, 2}));
    buf_ = Tensor::Full({2}, 7.0f);
    RegisterBuffer("buf", &buf_);
    RegisterModule("inner", &inner_);
  }
  ag::Variable w_;
  Tensor buf_;
  Linear inner_;
};

TEST(ModuleTest, NamedParametersRecursive) {
  Rng rng(1);
  ToyModule m(&rng);
  auto named = m.NamedParameters();
  std::vector<std::string> names;
  for (auto& [n, v] : named) names.push_back(n);
  EXPECT_EQ(names.size(), 3u);
  EXPECT_NE(std::find(names.begin(), names.end(), "w"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "inner.weight"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "inner.bias"), names.end());
}

TEST(ModuleTest, BuffersAndParamCount) {
  Rng rng(1);
  ToyModule m(&rng);
  EXPECT_EQ(m.NamedBuffers().size(), 1u);
  EXPECT_EQ(m.NumParameters(), 4 + 3 * 2 + 2);
}

TEST(ModuleTest, TrainingFlagPropagates) {
  Rng rng(1);
  ToyModule m(&rng);
  EXPECT_TRUE(m.training());
  m.SetTraining(false);
  EXPECT_FALSE(m.inner_.training());
}

TEST(ModuleTest, ZeroGradClearsAll) {
  Rng rng(1);
  ToyModule m(&rng);
  ag::Variable loss = ag::SumAll(m.w_);
  loss.Backward();
  EXPECT_TRUE(m.w_.has_grad());
  m.ZeroGrad();
  EXPECT_FALSE(m.w_.has_grad());
}

TEST(LinearTest, ForwardMatchesManual) {
  Rng rng(2);
  Linear lin(3, 2, &rng);
  ag::Variable x(Tensor::FromVector({1, 3}, {1, 2, 3}), false);
  ag::Variable y = lin.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{1, 2}));
  // y = x W + b computed manually
  const Tensor& w = lin.weight().data();
  for (int64_t j = 0; j < 2; ++j) {
    float expect = 0.0f;
    for (int64_t i = 0; i < 3; ++i) expect += x.data().At({0, i}) * w.At({i, j});
    EXPECT_NEAR(y.data().At({0, j}), expect, 1e-5f);  // bias init is zero
  }
}

TEST(LinearTest, ThreeDimInputFlattened) {
  Rng rng(3);
  Linear lin(4, 6, &rng);
  ag::Variable x(Tensor::Ones({2, 5, 4}), false);
  ag::Variable y = lin.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 5, 6}));
}

TEST(Conv1dTest, WindowsAndShape) {
  Rng rng(4);
  Conv1d conv(3, 8, /*window=*/5, /*stride=*/5, &rng);
  EXPECT_EQ(conv.OutputLength(200), 40);
  ag::Variable x(Tensor::Ones({2, 200, 3}), false);
  ag::Variable y = conv.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 40, 8}));
}

TEST(Conv1dTest, StrideOneOverlapping) {
  Rng rng(4);
  Conv1d conv(1, 4, 3, 1, &rng);
  EXPECT_EQ(conv.OutputLength(10), 8);
  ag::Variable x(Tensor::Ones({1, 10, 1}), false);
  EXPECT_EQ(conv.Forward(x).shape(), (Shape{1, 8, 4}));
}

TEST(ConvTranspose1dTest, InvertsConvShape) {
  Rng rng(5);
  Conv1d conv(3, 8, 5, 5, &rng);
  ConvTranspose1d deconv(8, 3, 5, 5, &rng);
  ag::Variable x(Tensor::Ones({2, 200, 3}), false);
  ag::Variable h = conv.Forward(x);
  ag::Variable y = deconv.Forward(h);
  EXPECT_EQ(y.shape(), x.shape());
}

TEST(PositionalEmbeddingTest, SliceAndBounds) {
  Rng rng(6);
  PositionalEmbedding pos(100, 16, &rng);
  ag::Variable p = pos.Forward(40);
  EXPECT_EQ(p.shape(), (Shape{40, 16}));
  EXPECT_EQ(pos.max_len(), 100);
}

TEST(FeedForwardTest, ShapePreserved) {
  Rng rng(7);
  FeedForward ffn(16, 64, 0.0f, &rng);
  ag::Variable x(Tensor::Ones({2, 5, 16}), false);
  EXPECT_EQ(ffn.Forward(x).shape(), x.shape());
}

TEST(SgdTest, ConvergesOnQuadratic) {
  // minimise (w - 3)^2
  ag::Variable w(Tensor::Scalar(0.0f), true);
  Sgd opt({w}, 0.1f);
  for (int i = 0; i < 100; ++i) {
    opt.ZeroGrad();
    ag::Variable loss = ag::Square(ag::AddScalar(w, -3.0f));
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(w.data().Item(), 3.0f, 1e-3f);
}

TEST(SgdTest, MomentumAcceleratesDescent) {
  ag::Variable w1(Tensor::Scalar(0.0f), true);
  ag::Variable w2(Tensor::Scalar(0.0f), true);
  Sgd plain({w1}, 0.01f);
  Sgd heavy({w2}, 0.01f, 0.9f);
  for (int i = 0; i < 20; ++i) {
    plain.ZeroGrad();
    ag::Square(ag::AddScalar(w1, -3.0f)).Backward();
    plain.Step();
    heavy.ZeroGrad();
    ag::Square(ag::AddScalar(w2, -3.0f)).Backward();
    heavy.Step();
  }
  EXPECT_GT(w2.data().Item(), w1.data().Item());  // momentum moved further
}

TEST(AdamWTest, ConvergesOnQuadraticBowl) {
  Rng rng(8);
  ag::Variable w(Tensor::RandNormal({4}, &rng), true);
  AdamWOptions opts;
  opts.lr = 0.05f;
  opts.weight_decay = 0.0f;
  AdamW opt({w}, opts);
  const Tensor target = Tensor::FromVector({4}, {1, -2, 3, 0.5});
  for (int i = 0; i < 300; ++i) {
    opt.ZeroGrad();
    ag::Variable diff = ag::Sub(w, ag::Variable(target));
    ag::SumAll(ag::Square(diff)).Backward();
    opt.Step();
  }
  EXPECT_TRUE(w.data().AllClose(target, 1e-2f, 1e-2f));
}

TEST(AdamWTest, WeightDecayShrinksWeights) {
  ag::Variable w(Tensor::Scalar(1.0f), true);
  AdamWOptions opts;
  opts.lr = 0.1f;
  opts.weight_decay = 0.5f;
  AdamW opt({w}, opts);
  // Zero gradient: only decay acts.
  opt.ZeroGrad();
  ag::MulScalar(w, 0.0f).Backward();
  opt.Step();
  EXPECT_LT(w.data().Item(), 1.0f);
}

TEST(ScheduleTest, WarmupThenCosineDecay) {
  WarmupCosineSchedule sched(1.0f, 10, 110, 0.1f);
  EXPECT_LT(sched.LrAt(0), 0.2f);          // warming up
  EXPECT_NEAR(sched.LrAt(9), 1.0f, 1e-5f); // end of warmup
  EXPECT_NEAR(sched.LrAt(110), 0.1f, 1e-4f);  // decayed to floor
  EXPECT_GT(sched.LrAt(30), sched.LrAt(80));  // monotone decay
}

TEST(CheckpointTest, RoundTripRestoresExactly) {
  const std::string path = ::testing::TempDir() + "/ckpt_test.bin";
  Rng rng(9);
  ToyModule a(&rng);
  // Perturb some state.
  a.w_.mutable_data().Fill(3.25f);
  a.buf_.Fill(-1.5f);
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());

  Rng rng2(99);
  ToyModule b(&rng2);
  ASSERT_FALSE(b.w_.data().AllClose(a.w_.data()));
  ASSERT_TRUE(LoadCheckpoint(&b, path).ok());
  EXPECT_TRUE(b.w_.data().AllClose(a.w_.data()));
  EXPECT_TRUE(b.buf_.AllClose(a.buf_));
  EXPECT_TRUE(b.inner_.weight().data().AllClose(a.inner_.weight().data()));
  std::remove(path.c_str());
}

TEST(CheckpointTest, ShapeMismatchRejected) {
  const std::string path = ::testing::TempDir() + "/ckpt_mismatch.bin";
  Rng rng(10);
  Linear small(2, 2, &rng);
  ASSERT_TRUE(SaveCheckpoint(small, path).ok());
  Linear big(3, 3, &rng);
  Status s = LoadCheckpoint(&big, path);
  EXPECT_FALSE(s.ok());
  std::remove(path.c_str());
}

TEST(CheckpointTest, PartialLoadSkipsUnknown) {
  const std::string path = ::testing::TempDir() + "/ckpt_partial.bin";
  Rng rng(11);
  ToyModule full(&rng);
  full.w_.mutable_data().Fill(5.0f);
  ASSERT_TRUE(SaveCheckpoint(full, path).ok());

  // A module that only has the inner Linear: strict load fails, partial works.
  class InnerOnly : public Module {
   public:
    explicit InnerOnly(Rng* rng) : inner_(3, 2, rng) { RegisterModule("inner", &inner_); }
    Linear inner_;
  };
  InnerOnly partial(&rng);
  EXPECT_FALSE(LoadCheckpoint(&partial, path).ok());
  EXPECT_TRUE(LoadCheckpoint(&partial, path, /*allow_partial=*/true).ok());
  EXPECT_TRUE(partial.inner_.weight().data().AllClose(full.inner_.weight().data()));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nn
}  // namespace rita
