// Tests for the parallel execution surface: nest-safe ParallelFor, concurrent
// callers, exception propagation, the scratch arena, counter-based RNG
// streams, and bit-identical group attention / k-means results across pool
// widths (the determinism contract of the slice-parallel refactor).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "cluster/kmeans.h"
#include "core/group_attention.h"
#include "model/rita_model.h"
#include "util/execution_context.h"
#include "util/thread_pool.h"

namespace rita {
namespace {

TEST(ThreadPoolNestingTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  // More outer tasks than workers, each spawning an inner ParallelFor on the
  // same pool: under the old global-wait design a worker would block on other
  // callers' work and the pool could deadlock. Repeat to shake out schedules.
  for (int round = 0; round < 25; ++round) {
    std::vector<std::atomic<int>> hits(32 * 64);
    pool.ParallelFor(0, 32, [&](int64_t o0, int64_t o1) {
      for (int64_t o = o0; o < o1; ++o) {
        pool.ParallelFor(0, 64, [&, o](int64_t i0, int64_t i1) {
          for (int64_t i = i0; i < i1; ++i) hits[o * 64 + i].fetch_add(1);
        });
      }
    });
    for (auto& h : hits) ASSERT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolNestingTest, TriplyNestedStillCompletes) {
  ThreadPool pool(3);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(0, 6, [&](int64_t a0, int64_t a1) {
    for (int64_t a = a0; a < a1; ++a) {
      pool.ParallelFor(0, 6, [&](int64_t b0, int64_t b1) {
        for (int64_t b = b0; b < b1; ++b) {
          pool.ParallelFor(0, 6, [&](int64_t c0, int64_t c1) {
            total.fetch_add(c1 - c0);
          });
        }
      });
    }
  });
  EXPECT_EQ(total.load(), 6 * 6 * 6);
}

TEST(ThreadPoolNestingTest, ConcurrentCallersAreIsolated) {
  ThreadPool pool(4);
  // Several external threads issue ParallelFor calls simultaneously; each
  // call must cover exactly its own range (per-call task groups — no caller
  // waits on or absorbs another's shards).
  constexpr int kCallers = 6;
  constexpr int kRange = 500;
  std::vector<std::vector<std::atomic<int>>> hits(kCallers);
  for (auto& h : hits) {
    h = std::vector<std::atomic<int>>(kRange);
  }
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int round = 0; round < 20; ++round) {
        pool.ParallelFor(0, kRange, [&, c](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) hits[c][i].fetch_add(1);
        });
      }
    });
  }
  for (auto& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) {
    for (int i = 0; i < kRange; ++i) ASSERT_EQ(hits[c][i].load(), 20);
  }
}

TEST(ThreadPoolNestingTest, ExceptionInShardPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 100,
                       [](int64_t lo, int64_t) {
                         if (lo >= 0) throw std::runtime_error("shard failed");
                       }),
      std::runtime_error);
  // The pool must remain fully usable afterwards.
  std::atomic<int> count{0};
  pool.ParallelFor(0, 100, [&](int64_t lo, int64_t hi) {
    count.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolNestingTest, ExceptionInInlineShardStillWaitsForOthers) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  try {
    pool.ParallelFor(0, 10, [&](int64_t lo, int64_t hi) {
      if (lo == 0) throw std::runtime_error("inline shard failed");
      completed.fetch_add(static_cast<int>(hi - lo));
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error&) {
  }
  // All non-throwing shards ran to completion before the rethrow (the body's
  // captures may die as soon as ParallelFor returns).
  EXPECT_EQ(completed.load(), 10 - 5);
}

TEST(ScratchArenaTest, RecyclesBuffersAcrossLeases) {
  ScratchArena arena;
  float* first = nullptr;
  {
    ScratchArena::Lease lease = arena.Acquire();
    first = lease.Floats(256);
    first[0] = 1.0f;
    first[255] = 2.0f;
  }
  ScratchArena::Lease lease = arena.Acquire();
  EXPECT_EQ(lease.Floats(256), first);  // same chunk, same buffer, no realloc
}

TEST(ScratchArenaTest, ConcurrentLeasesAreDistinct) {
  ScratchArena arena;
  ScratchArena::Lease a = arena.Acquire();
  ScratchArena::Lease b = arena.Acquire();
  float* pa = a.Floats(64);
  float* pb = b.Floats(64);
  EXPECT_NE(pa, pb);
}

TEST(ScratchArenaTest, RetentionCapFreesOversizedChunks) {
  ScratchArena arena(/*max_retained_bytes=*/1024);
  {
    ScratchArena::Lease lease = arena.Acquire();
    lease.Floats(4096);  // 16 KiB, far over the cap
  }
  // The chunk was released over the cap, so its storage went back to the
  // allocator; the next lease starts empty instead of pinning 16 KiB.
  ScratchArena::Lease lease = arena.Acquire();
  float* p = lease.Floats(8);  // small buffer fits under the cap
  ASSERT_NE(p, nullptr);
  {
    ScratchArena::Lease small = arena.Acquire();
    small.Floats(8);
  }
  ScratchArena::Lease again = arena.Acquire();
  ASSERT_NE(again.Floats(8), nullptr);  // under-cap chunks keep recycling
}

TEST(ScratchArenaTest, ResetReusesBuffersBySequencePosition) {
  ScratchArena arena;
  ScratchArena::Lease lease = arena.Acquire();
  float* p0 = lease.Floats(10);
  float* p1 = lease.Floats(20);
  lease.Reset();
  EXPECT_EQ(lease.Floats(10), p0);
  EXPECT_EQ(lease.Floats(20), p1);
}

// g_grad_mode is thread_local, so a caller's NoGradGuard does not apply
// inside pool workers on its own; ExecutionContext::ParallelFor must
// propagate the caller's mode into every shard (and restore the workers'
// own mode afterwards).
TEST(GradModePropagationTest, CallerNoGradGuardReachesPoolWorkers) {
  ThreadPool pool(4);
  ExecutionContext context(&pool);
  constexpr int64_t kRange = 64;
  std::vector<int> observed(kRange, -1);
  {
    ag::NoGradGuard guard;
    context.ParallelFor(0, kRange, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) observed[i] = ag::GradModeEnabled() ? 1 : 0;
    });
  }
  for (int64_t i = 0; i < kRange; ++i) {
    EXPECT_EQ(observed[i], 0) << "grad mode leaked into shard " << i;
  }
  // Default (grad-on) callers propagate grad-on.
  context.ParallelFor(0, kRange, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) observed[i] = ag::GradModeEnabled() ? 1 : 0;
  });
  for (int64_t i = 0; i < kRange; ++i) EXPECT_EQ(observed[i], 1);
}

// The worker's own grad mode must be restored after running a propagated
// shard: a no-grad shard followed by a grad-on caller's shard on the same
// worker must not see stale state.
TEST(GradModePropagationTest, WorkersRestoreTheirModeBetweenCalls) {
  ThreadPool pool(2);
  ExecutionContext context(&pool);
  {
    ag::NoGradGuard guard;
    context.ParallelFor(0, 32, [](int64_t, int64_t) {});
  }
  std::atomic<int> grad_on_count{0};
  context.ParallelFor(0, 32, [&](int64_t lo, int64_t hi) {
    if (ag::GradModeEnabled()) grad_on_count.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(grad_on_count.load(), 32);
}

// Functional consequence: a forward pass under NoGradGuard whose slice loops
// run on pool workers must not record an autograd graph anywhere.
TEST(GradModePropagationTest, NoGradForwardBuildsNoGraphInPoolWorkers) {
  ThreadPool pool(4);
  ExecutionContext context(&pool);
  Rng rng(55);
  core::GroupAttentionOptions options;
  options.num_groups = 4;
  core::GroupAttentionMechanism mech(4, options, &rng);
  mech.set_execution_context(&context);
  ag::Variable q(Tensor::RandNormal({4, 32, 4}, &rng), true);
  ag::Variable k(Tensor::RandNormal({4, 32, 4}, &rng), true);
  ag::Variable v(Tensor::RandNormal({4, 32, 4}, &rng), true);
  ag::NoGradGuard guard;
  ag::Variable out = mech.Forward(q, k, v);
  EXPECT_EQ(out.grad_fn(), nullptr);
}

TEST(SliceRngTest, CounterBasedStreamsAreReproducibleAndDistinct) {
  Rng a = ExecutionContext::SliceRng(7, 3, 11);
  Rng b = ExecutionContext::SliceRng(7, 3, 11);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());

  Rng c = ExecutionContext::SliceRng(7, 3, 12);  // neighbouring slice
  Rng d = ExecutionContext::SliceRng(7, 4, 11);  // neighbouring stream
  int same_c = 0, same_d = 0;
  Rng a2 = ExecutionContext::SliceRng(7, 3, 11);
  for (int i = 0; i < 64; ++i) {
    const uint64_t v = a2.NextU64();
    same_c += (v == c.NextU64());
    same_d += (v == d.NextU64());
  }
  EXPECT_LT(same_c, 2);
  EXPECT_LT(same_d, 2);
}

TEST(KMeansDeterminismTest, BitIdenticalAcrossPoolWidths) {
  Rng data_rng(21);
  // n > one reduction block so the parallel centroid update path is the one
  // being compared, not the trivial single-block case.
  Tensor points = Tensor::RandNormal({1500, 12}, &data_rng);
  cluster::KMeansOptions options;
  options.num_clusters = 24;
  options.max_iters = 4;

  ThreadPool pool1(1), pool4(4);
  ExecutionContext ctx1(&pool1), ctx4(&pool4);
  Rng rng1(99), rng4(99);
  cluster::KMeansResult r1 = cluster::RunKMeans(points, options, &rng1, &ctx1);
  cluster::KMeansResult r4 = cluster::RunKMeans(points, options, &rng4, &ctx4);

  ASSERT_EQ(r1.num_clusters(), r4.num_clusters());
  EXPECT_EQ(r1.assignment, r4.assignment);
  EXPECT_EQ(r1.counts, r4.counts);
  EXPECT_EQ(std::memcmp(r1.centroids.data(), r4.centroids.data(),
                        sizeof(float) * r1.centroids.numel()),
            0);
  EXPECT_EQ(r1.inertia, r4.inertia);
}

TEST(GroupAttentionDeterminismTest, ForwardAndBackwardBitIdenticalAcrossPoolWidths) {
  const int64_t bh = 6, n = 700, d = 8;
  Rng data_rng(5);
  Tensor q0 = Tensor::RandNormal({bh, n, d}, &data_rng);
  Tensor k0 = Tensor::RandNormal({bh, n, d}, &data_rng);
  Tensor v0 = Tensor::RandNormal({bh, n, d}, &data_rng);

  auto run = [&](int threads, Tensor* grads) {
    ThreadPool pool(threads);
    ExecutionContext context(&pool);
    Rng rng(1234);
    core::GroupAttentionOptions options;
    options.num_groups = 12;
    options.kmeans_iters = 3;
    core::GroupAttentionMechanism mech(d, options, &rng);
    mech.set_execution_context(&context);
    ag::Variable q(q0.Clone(), true), k(k0.Clone(), true), v(v0.Clone(), true);
    ag::Variable out = mech.Forward(q, k, v);
    ag::SumAll(out).Backward();
    grads[0] = q.grad().Clone();
    grads[1] = k.grad().Clone();
    grads[2] = v.grad().Clone();
    return out.data().Clone();
  };

  Tensor grads1[3], grads4[3];
  Tensor out1 = run(1, grads1);
  Tensor out4 = run(4, grads4);

  EXPECT_EQ(std::memcmp(out1.data(), out4.data(), sizeof(float) * out1.numel()), 0)
      << "forward output differs between 1-thread and 4-thread pools";
  const char* names[3] = {"dQ", "dK", "dV"};
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(std::memcmp(grads1[i].data(), grads4[i].data(),
                          sizeof(float) * grads1[i].numel()),
              0)
        << names[i] << " differs between 1-thread and 4-thread pools";
  }
}

// Backward resolves the execution context through the mechanism at call
// time, so a context destroyed between forward and backward (after being
// cleared on the mechanism) must not be dereferenced.
TEST(GroupAttentionDeterminismTest, BackwardSafeAfterContextSwap) {
  Rng rng(13);
  core::GroupAttentionOptions options;
  options.num_groups = 4;
  core::GroupAttentionMechanism mech(4, options, &rng);
  ag::Variable q(Tensor::RandNormal({2, 20, 4}, &rng), true);
  ag::Variable k(Tensor::RandNormal({2, 20, 4}, &rng), true);
  ag::Variable v(Tensor::RandNormal({2, 20, 4}, &rng), true);
  ag::Variable out;
  {
    ThreadPool pool(2);
    ExecutionContext context(&pool);
    mech.set_execution_context(&context);
    out = mech.Forward(q, k, v);
    mech.set_execution_context(nullptr);
  }  // context and pool destroyed with the graph still alive
  ag::SumAll(out).Backward();
  EXPECT_EQ(q.grad().numel(), q.data().numel());
}

// Destroying the mechanism itself before backward must also be safe: the
// graph holds the shared context cell, which the mechanism's destructor
// nulls, so backward falls back to the default context.
TEST(GroupAttentionDeterminismTest, BackwardSafeAfterMechanismDestroyed) {
  Rng rng(14);
  ag::Variable q(Tensor::RandNormal({2, 16, 4}, &rng), true);
  ag::Variable k(Tensor::RandNormal({2, 16, 4}, &rng), true);
  ag::Variable v(Tensor::RandNormal({2, 16, 4}, &rng), true);
  ag::Variable out;
  {
    core::GroupAttentionOptions options;
    options.num_groups = 4;
    core::GroupAttentionMechanism mech(4, options, &rng);
    out = mech.Forward(q, k, v);
  }  // mechanism destroyed with the graph still alive
  ag::SumAll(out).Backward();
  EXPECT_EQ(k.grad().numel(), k.data().numel());
}

// End-to-end: a whole RITA model (conv frontend + group-attention encoder +
// heads) produces bit-identical logits and loss gradients whether its
// execution context runs over a 1-thread or a 4-thread pool — the contract
// the Trainer relies on when options.execution_context is set.
TEST(GroupAttentionDeterminismTest, RitaModelForwardBitIdenticalAcrossPoolWidths) {
  Rng data_rng(31);
  Tensor batch = Tensor::RandNormal({3, 60, 2}, &data_rng);

  auto run = [&](int threads) {
    ThreadPool pool(threads);
    ExecutionContext context(&pool);
    Rng rng(77);
    model::RitaConfig config;
    config.input_channels = 2;
    config.input_length = 60;
    config.window = 5;
    config.stride = 5;
    config.num_classes = 4;
    config.encoder.dim = 16;
    config.encoder.num_layers = 2;
    config.encoder.num_heads = 2;
    config.encoder.ffn_hidden = 32;
    config.encoder.dropout = 0.0f;
    config.encoder.attention.kind = attn::AttentionKind::kGroup;
    config.encoder.attention.group.num_groups = 4;
    model::RitaModel model(config, &rng);
    model.SetExecutionContext(&context);
    return model.ClassLogits(batch).data().Clone();
  };

  Tensor logits1 = run(1);
  Tensor logits4 = run(4);
  EXPECT_EQ(std::memcmp(logits1.data(), logits4.data(),
                        sizeof(float) * logits1.numel()),
            0)
      << "model logits differ between 1-thread and 4-thread pools";
}

}  // namespace
}  // namespace rita
