// Tests for the telemetry-driven adaptive batch planner: the robust online
// fit primitive, cold-start seed fidelity, convergence toward a synthetic
// cost model, conservatism (no telemetry can push a plan past the memory
// safety ceiling), hysteresis (a single outlier sample does not move the
// plan), hopeless-deadline shedding at engine admission, and concurrent
// telemetry ingestion during scheduling (run under RITA_SANITIZE=thread in
// CI).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "serve/adaptive_planner.h"
#include "serve/inference_engine.h"
#include "serve/telemetry.h"
#include "util/rng.h"

namespace rita {
namespace serve {
namespace {

core::EncoderShape SmallShape() {
  core::EncoderShape s;
  s.layers = 4;
  s.dim = 32;
  s.heads = 2;
  s.ffn_hidden = 64;
  s.window = 5;
  s.stride = 5;
  s.channels = 3;
  s.kind = attn::AttentionKind::kGroup;
  return s;
}

/// Analytic seed over a device sized so that the training-accounted plan at
/// (kLength, kGroups) is deliberately small — the conservative baseline the
/// adaptive planner should beat once telemetry confirms capacity.
constexpr int64_t kLength = 100;
constexpr int64_t kGroups = 8;

core::BatchPlannerOptions SeedOptions() {
  core::BatchPlannerOptions opts;
  opts.max_length = 128;
  opts.num_samples = 48;
  return opts;
}

core::MemoryModel TightMemoryModel(int64_t analytic_batch) {
  core::EncoderShape shape = SmallShape();
  core::MemoryModel probe(shape);
  // Capacity chosen so `analytic_batch` is about the feasible training batch
  // at the reference point (0.9 fraction, like the planner default) — but
  // never below what Calibrate needs: every sample point (any L <=
  // max_length, N <= tokens(L)) must fit at batch 1 or the probe aborts.
  const double tight =
      probe.PeakBytes(analytic_batch, kLength, kGroups) / 0.9 * 1.01;
  const int64_t lmax = SeedOptions().max_length;
  const double calibration_floor =
      probe.PeakBytes(1, lmax, shape.Tokens(lmax)) / 0.9 * 1.05;
  core::MemoryModelOptions mm;
  mm.capacity_bytes = std::max(tight, calibration_floor);
  return core::MemoryModel(shape, mm);
}

// -- telemetry primitives ----------------------------------------------------

TEST(TelemetryTest, LengthBucketIsEnclosingPowerOfTwo) {
  EXPECT_EQ(LengthBucket(1), 1);
  EXPECT_EQ(LengthBucket(2), 2);
  EXPECT_EQ(LengthBucket(3), 4);
  EXPECT_EQ(LengthBucket(60), 64);
  EXPECT_EQ(LengthBucket(64), 64);
  EXPECT_EQ(LengthBucket(65), 128);
  EXPECT_EQ(LengthBucket(200), 256);
}

TEST(TelemetryTest, RssProbeReportsPlausibleResidency) {
  const int64_t rss = CurrentRssBytes();
  const int64_t peak = PeakRssBytes();
#if defined(__linux__)
  // The test process certainly holds more than a megabyte and less than a
  // terabyte; peak can never undercut current residency.
  EXPECT_GT(rss, 1 << 20);
  EXPECT_LT(rss, int64_t{1} << 40);
  EXPECT_GE(peak, rss / 2);  // ru_maxrss granularity slack
#else
  EXPECT_GE(rss, 0);
  EXPECT_GE(peak, 0);
#endif
}

TEST(OnlineLinearFitTest, RecoversPlantedLine) {
  OnlineLinearFit fit(/*decay=*/0.05, /*outlier_factor=*/4.0);
  Rng rng(17);
  for (int i = 0; i < 400; ++i) {
    const double x = 1.0 + rng.UniformInt(32);
    fit.Add(x, 3.0 + 0.5 * x);
  }
  ASSERT_TRUE(fit.ready());
  EXPECT_NEAR(fit.slope(), 0.5, 0.02);
  EXPECT_NEAR(fit.intercept(), 3.0, 0.3);
  EXPECT_NEAR(fit.Predict(16.0), 11.0, 0.3);
}

TEST(OnlineLinearFitTest, SingleOutlierIsClampedNotAbsorbed) {
  OnlineLinearFit fit(0.05, 4.0);
  Rng rng(23);
  for (int i = 0; i < 300; ++i) {
    const double x = 1.0 + rng.UniformInt(16);
    fit.Add(x, 2.0 + 1.0 * x + 0.05 * (rng.Uniform() - 0.5));
  }
  const double before = fit.Predict(8.0);
  EXPECT_TRUE(fit.Add(8.0, 500.0)) << "wild sample must be flagged as outlier";
  const double after = fit.Predict(8.0);
  // Unclamped, one 500ms sample at decay 0.05 would drag the prediction by
  // ~0.05 * (500 - 10) = ~25ms. Clamped, the move stays within the robust
  // envelope's epsilon.
  EXPECT_LT(std::fabs(after - before), 1.0);
}

TEST(OnlineLinearFitTest, ConstantXNeverReady) {
  OnlineLinearFit fit(0.05, 4.0);
  for (int i = 0; i < 50; ++i) fit.Add(4.0, 10.0);
  EXPECT_FALSE(fit.ready()) << "slope is indeterminate without distinct x";
}

// -- adaptive planner --------------------------------------------------------

core::BatchTelemetry Sample(int64_t batch, double compute_ms,
                            int64_t rss_bytes = 0, int64_t model_id = 0) {
  core::BatchTelemetry s;
  s.model_id = model_id;
  s.task = 0;
  s.length = kLength;
  s.groups = kGroups;
  s.batch = batch;
  s.compute_ms = compute_ms;
  s.peak_rss_bytes = rss_bytes;
  return s;
}

TEST(AdaptivePlannerTest, ColdStartMatchesAnalyticSeed) {
  core::MemoryModel memory = TightMemoryModel(4);
  core::BatchPlanner seed(memory, SeedOptions());
  Rng rng(31);
  seed.Calibrate(&rng);

  AdaptivePlanner planner(&seed);
  EXPECT_TRUE(planner.calibrated());
  for (int64_t length : {20, 60, 100}) {
    EXPECT_EQ(planner.PlanBatch(0, 0, length, kGroups),
              seed.PredictBatchSize(length, kGroups))
        << "cold planner must answer exactly like its seed at length " << length;
  }
  EXPECT_EQ(planner.EstimateComputeMs(0, 0, kLength, 1), 0.0)
      << "no telemetry, no latency estimate";
}

TEST(AdaptivePlannerTest, ForwardOnlyCeilingExceedsTrainingPlan) {
  core::MemoryModel memory = TightMemoryModel(4);
  core::BatchPlanner seed(memory, SeedOptions());
  Rng rng(31);
  seed.Calibrate(&rng);
  AdaptivePlanner planner(&seed);
  // Forward-only accounting on the same device admits strictly more than the
  // training-accounted analytic plan (backward_multiplier 2.0 => ~3x).
  EXPECT_GT(planner.SafetyCeiling(kLength, kGroups),
            seed.PredictBatchSize(kLength, kGroups));
}

// A reduced-precision variant registers a per-model memory scale; the
// ceiling probe widens accordingly: scale 0.5 (int8) must lift the ceiling
// to >= 1.5x the fp32 one (it roughly doubles, modulo probe granularity)
// while other models and the model-blind overload stay put — and a scale
// registered after traffic began re-probes the live buckets.
TEST(AdaptivePlannerTest, ModelMemoryScaleLiftsSafetyCeiling) {
  core::MemoryModel memory = TightMemoryModel(4);
  core::BatchPlanner seed(memory, SeedOptions());
  Rng rng(31);
  seed.Calibrate(&rng);
  AdaptivePlanner planner(&seed);

  const int64_t fp32_ceiling = planner.SafetyCeiling(0, kLength, kGroups);
  EXPECT_EQ(planner.ModelMemoryScale(1), 1.0);
  planner.SetModelMemoryScale(1, 0.5);
  EXPECT_EQ(planner.ModelMemoryScale(1), 0.5);
  const int64_t int8_ceiling = planner.SafetyCeiling(1, kLength, kGroups);
  EXPECT_GE(2 * int8_ceiling, 3 * fp32_ceiling)
      << "halving the per-sample charge must lift the ceiling >= 1.5x";
  EXPECT_EQ(planner.SafetyCeiling(0, kLength, kGroups), fp32_ceiling);
  EXPECT_EQ(planner.SafetyCeiling(kLength, kGroups), fp32_ceiling);

  // Late registration: model 2's bucket forms at the default charge, then
  // the scale arrives and the bucket's ceiling rises in place.
  for (int i = 0; i < 10; ++i) {
    planner.Observe(Sample(2 + i % 3, 1.0, 0, /*model_id=*/2));
  }
  const AdaptivePlanner::Snapshot before = planner.ModelSnapshot(2);
  ASSERT_GT(before.ceiling, 0);
  planner.SetModelMemoryScale(2, 0.5);
  const AdaptivePlanner::Snapshot after = planner.ModelSnapshot(2);
  EXPECT_GT(after.ceiling, before.ceiling);
}

TEST(AdaptivePlannerTest, ConvergesTowardSyntheticCostModel) {
  core::MemoryModel memory = TightMemoryModel(4);
  core::BatchPlanner seed(memory, SeedOptions());
  Rng rng(31);
  seed.Calibrate(&rng);

  // True serving cost: compute_ms = 2 + 0.75 * B. With a 10ms target the
  // optimal batch is floor((10 - 2) / 0.75) = 10.
  const double true_a = 2.0, true_b = 0.75, target_ms = 10.0;
  AdaptivePlannerOptions opts;
  opts.target_batch_ms = target_ms;
  AdaptivePlanner planner(&seed, opts);
  const int64_t ceiling = planner.SafetyCeiling(kLength, kGroups);
  const int64_t expected =
      std::min(ceiling, static_cast<int64_t>((target_ms - true_a) / true_b));

  // Closed loop: each "batch" runs at the planner's current plan, with the
  // natural ragged tail (plan - 1) mixing in distinct batch sizes, and its
  // measured latency is fed back.
  Rng noise(5);
  for (int round = 0; round < 200; ++round) {
    const int64_t plan = planner.PlanBatch(0, 0, kLength, kGroups);
    const int64_t b = (round % 3 == 2) ? std::max<int64_t>(1, plan - 1) : plan;
    const double jitter = 0.05 * (noise.Uniform() - 0.5);
    planner.Observe(Sample(b, true_a + true_b * static_cast<double>(b) + jitter));
  }

  const int64_t converged = planner.PlanBatch(0, 0, kLength, kGroups);
  EXPECT_GT(converged, seed.PredictBatchSize(kLength, kGroups))
      << "telemetry should have lifted the plan above the conservative seed";
  EXPECT_GE(converged, expected - 2);
  EXPECT_LE(converged, expected + 2);
  EXPECT_LE(converged, ceiling);

  // The latency estimate the admission shedder consults matches the truth.
  const double eta = planner.EstimateComputeMs(0, 0, kLength, 1);
  EXPECT_NEAR(eta, true_a + true_b, 1.0);
}

TEST(AdaptivePlannerTest, NeverExceedsSafetyCeiling) {
  core::MemoryModel memory = TightMemoryModel(2);
  core::BatchPlanner seed(memory, SeedOptions());
  Rng rng(31);
  seed.Calibrate(&rng);
  AdaptivePlanner planner(&seed);  // no latency target: plan rises freely
  const int64_t ceiling = planner.SafetyCeiling(kLength, kGroups);

  // Adversarially rosy telemetry: huge batches, microsecond latencies, tiny
  // RSS — everything screams "go bigger".
  for (int round = 0; round < 300; ++round) {
    planner.Observe(Sample(1 + (round % 64), 0.001, /*rss_bytes=*/1 << 20));
  }
  const int64_t plan = planner.PlanBatch(0, 0, kLength, kGroups);
  EXPECT_LE(plan, ceiling) << "no telemetry may push a plan past the ceiling";
  EXPECT_GT(plan, seed.PredictBatchSize(kLength, kGroups))
      << "with confirming telemetry the plan should reach past the seed";

  const AdaptivePlanner::Snapshot snapshot = planner.ModelSnapshot(0);
  EXPECT_LE(snapshot.plan, snapshot.ceiling);
  // Bucket state probes its ceiling at the bucket's UPPER bound — at least
  // as conservative as the raw-length ceiling, and exactly the bound probed
  // at LengthBucket(kLength).
  EXPECT_LE(snapshot.ceiling, ceiling);
  EXPECT_EQ(snapshot.ceiling,
            planner.SafetyCeiling(LengthBucket(kLength), kGroups));
  EXPECT_GE(snapshot.samples, 300u);
}

TEST(AdaptivePlannerTest, SingleOutlierDoesNotMoveThePlan) {
  core::MemoryModel memory = TightMemoryModel(4);
  core::BatchPlanner seed(memory, SeedOptions());
  Rng rng(31);
  seed.Calibrate(&rng);
  AdaptivePlannerOptions opts;
  opts.target_batch_ms = 10.0;
  AdaptivePlanner planner(&seed, opts);

  Rng noise(9);
  for (int round = 0; round < 200; ++round) {
    const int64_t plan = planner.PlanBatch(0, 0, kLength, kGroups);
    const int64_t b = (round % 3 == 2) ? std::max<int64_t>(1, plan - 1) : plan;
    planner.Observe(Sample(b, 2.0 + 0.75 * static_cast<double>(b) +
                                  0.05 * (noise.Uniform() - 0.5)));
  }
  const int64_t settled = planner.PlanBatch(0, 0, kLength, kGroups);
  const uint64_t updates_before = planner.ModelSnapshot(0).plan_updates;

  // One wildly slow batch (host hiccup, page-cache miss storm): clamped by
  // the robust fit and absorbed by the hysteresis dead-band.
  planner.Observe(Sample(settled, 400.0));
  EXPECT_EQ(planner.PlanBatch(0, 0, kLength, kGroups), settled)
      << "a single outlier sample moved the published plan";
  EXPECT_EQ(planner.ModelSnapshot(0).plan_updates, updates_before);
  EXPECT_GE(planner.ModelSnapshot(0).outliers, 1u);
}

TEST(AdaptivePlannerTest, MeasuredRssCapBoundsThePlan) {
  core::MemoryModel memory = TightMemoryModel(4);
  core::BatchPlanner seed(memory, SeedOptions());
  Rng rng(31);
  seed.Calibrate(&rng);

  AdaptivePlannerOptions opts;
  opts.rss_budget_bytes = 100 << 20;  // 100 MB measured-memory budget
  AdaptivePlanner planner(&seed, opts);
  const int64_t ceiling = planner.SafetyCeiling(kLength, kGroups);

  // Measured residency: 40 MB static + 10 MB per batch row => the budget
  // admits floor((100 - 40) / 10) = 6 rows, far below the analytic ceiling.
  Rng noise(13);
  for (int round = 0; round < 200; ++round) {
    const int64_t b = 1 + (round % 8);
    const int64_t rss =
        (int64_t{40} << 20) + b * (int64_t{10} << 20) +
        static_cast<int64_t>(1e5 * (noise.Uniform() - 0.5));
    planner.Observe(Sample(b, 0.5 + 0.1 * static_cast<double>(b), rss));
  }
  const int64_t plan = planner.PlanBatch(0, 0, kLength, kGroups);
  EXPECT_LE(plan, 7) << "measured-RSS budget must bound the plan";
  EXPECT_LE(plan, ceiling);
}

TEST(AdaptivePlannerTest, ConcurrentIngestionDuringPlanning) {
  core::MemoryModel memory = TightMemoryModel(4);
  core::BatchPlanner seed(memory, SeedOptions());
  Rng rng(31);
  seed.Calibrate(&rng);
  AdaptivePlanner planner(&seed);
  const int64_t ceiling = planner.SafetyCeiling(kLength, kGroups);

  // 4 executor-like writers ingest telemetry while 4 scheduler-like readers
  // plan, estimate and snapshot. TSan (CI) proves the synchronization; the
  // assertions prove the invariants hold mid-flight.
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&planner, w] {
      Rng noise(100 + w);
      for (int i = 0; i < 500; ++i) {
        const int64_t b = 1 + noise.UniformInt(16);
        planner.Observe(Sample(b, 1.0 + 0.5 * static_cast<double>(b),
                               (int64_t{30} << 20) + b * (1 << 20),
                               /*model_id=*/w % 2));
      }
    });
  }
  std::atomic<int64_t> max_seen{0};
  for (int r = 0; r < 4; ++r) {
    threads.emplace_back([&planner, &stop, &max_seen, r] {
      while (!stop.load(std::memory_order_acquire)) {
        const int64_t plan = planner.PlanBatch(r % 2, 0, kLength, kGroups);
        int64_t prev = max_seen.load(std::memory_order_relaxed);
        while (plan > prev &&
               !max_seen.compare_exchange_weak(prev, plan,
                                               std::memory_order_relaxed)) {
        }
        planner.EstimateComputeMs(r % 2, 0, kLength, 1);
        planner.ModelSnapshot(-1);
      }
    });
  }
  for (int w = 0; w < 4; ++w) threads[static_cast<size_t>(w)].join();
  stop.store(true, std::memory_order_release);
  for (size_t i = 4; i < threads.size(); ++i) threads[i].join();

  EXPECT_LE(max_seen.load(), ceiling)
      << "a mid-flight plan escaped the safety ceiling";
  const AdaptivePlanner::Snapshot all = planner.ModelSnapshot(-1);
  EXPECT_EQ(all.samples, 4u * 500u);
}

// -- engine integration ------------------------------------------------------

model::RitaConfig EngineConfig() {
  model::RitaConfig config;
  config.input_channels = 2;
  config.input_length = 60;
  config.window = 5;
  config.stride = 5;
  config.num_classes = 4;
  config.encoder.dim = 16;
  config.encoder.num_layers = 2;
  config.encoder.num_heads = 2;
  config.encoder.ffn_hidden = 32;
  config.encoder.attention.kind = attn::AttentionKind::kGroup;
  config.encoder.attention.group.num_groups = 4;
  return config;
}

Tensor MakeSeries(int64_t t, int64_t c, uint64_t seed) {
  Rng rng(seed);
  return Tensor::RandNormal({t, c}, &rng);
}

struct EngineFixture {
  model::RitaConfig config = EngineConfig();
  std::unique_ptr<model::RitaModel> model;
  std::unique_ptr<FrozenModel> frozen;
  core::MemoryModel memory;
  core::BatchPlanner seed;
  AdaptivePlanner planner;

  explicit EngineFixture(const AdaptivePlannerOptions& opts = {})
      // `config` is declared first, so its MemoryShape() — the canonical
      // config-to-shape mapping — can seed `memory` here.
      : memory(config.MemoryShape()),
        seed(memory, EngineSeedOptions()),
        planner(&seed, opts) {
    Rng rng(77);
    model = std::make_unique<model::RitaModel>(config, &rng);
    frozen = std::make_unique<FrozenModel>(*model);
    Rng calib(3);
    seed.Calibrate(&calib);
  }

  static core::BatchPlannerOptions EngineSeedOptions() {
    core::BatchPlannerOptions opts;
    opts.max_length = 64;
    opts.num_samples = 32;
    return opts;
  }
};

TEST(AdaptiveEngineTest, TelemetryFlowsAndStatsSurfacePlannerState) {
  EngineFixture fx;
  // Calibrate() must run before the engine takes the planner.
  ASSERT_TRUE(fx.planner.calibrated());
  InferenceEngineOptions options;
  options.num_workers = 2;
  options.max_micro_batch = 8;
  options.cache_bytes = 0;  // every request computes => every batch observes
  options.planner = &fx.planner;
  InferenceEngine engine(fx.frozen.get(), options);

  std::vector<std::future<InferenceResponse>> futures;
  for (int i = 0; i < 48; ++i) {
    InferenceRequest request;
    request.series = MakeSeries(60, 2, 1000 + static_cast<uint64_t>(i));
    futures.push_back(engine.Submit(std::move(request)));
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().status.ok());

  const InferenceEngineStats stats = engine.stats();
  EXPECT_GE(stats.planner_samples, stats.batches)
      << "every executed batch must reach the planner";
  EXPECT_GT(stats.planner_ceiling, 0);
  EXPECT_GT(stats.planner_batch, 0);
  EXPECT_LE(stats.planner_batch, stats.planner_ceiling);
  // Per-model view mirrors the aggregate for a single-model engine.
  EXPECT_EQ(engine.model_stats(0).planner_samples, stats.planner_samples);
}

TEST(AdaptiveEngineTest, HopelessDeadlinesShedAtAdmission) {
  EngineFixture fx;
  InferenceEngineOptions options;
  options.num_workers = 1;
  options.max_micro_batch = 4;
  options.cache_bytes = 0;
  options.planner = &fx.planner;
  InferenceEngine engine(fx.frozen.get(), options);

  // Warm the planner's latency estimate for this (model, task, bucket) with
  // VARIED batch sizes (a constant size leaves the latency slope
  // indeterminate): pause, pre-load a burst of known size, resume, drain.
  uint64_t seed_counter = 2000;
  for (int round = 0; round < 12; ++round) {
    const int burst = 2 + round % 3;  // 2, 3, 4
    engine.Pause();
    std::vector<std::future<InferenceResponse>> futures;
    for (int i = 0; i < burst; ++i) {
      InferenceRequest request;
      request.series = MakeSeries(60, 2, seed_counter++);
      futures.push_back(engine.Submit(std::move(request)));
    }
    engine.Resume();
    for (auto& f : futures) EXPECT_TRUE(f.get().status.ok());
  }
  ASSERT_GT(fx.planner.EstimateComputeMs(0, 0, 60, 1), 0.0)
      << "estimate must be live before the shed can trigger";

  // A deadline already in the past cannot be met by any schedule.
  InferenceRequest hopeless;
  hopeless.series = MakeSeries(60, 2, 3000);
  hopeless.deadline = ServeClock::now() - std::chrono::milliseconds(5);
  const InferenceResponse shed = engine.Run(std::move(hopeless));
  EXPECT_EQ(shed.status.code(), StatusCode::kDeadlineUnmeetable);

  // A comfortably future deadline still serves.
  InferenceRequest fine;
  fine.series = MakeSeries(60, 2, 3001);
  fine.deadline = ServeClock::now() + std::chrono::seconds(30);
  EXPECT_TRUE(engine.Run(std::move(fine)).status.ok());

  const InferenceEngineStats stats = engine.stats();
  EXPECT_EQ(stats.rejected_hopeless, 1u);
  EXPECT_EQ(stats.rejected_invalid, 0u);
  EXPECT_EQ(stats.rejected_backpressure, 0u);
  EXPECT_EQ(engine.model_stats(0).rejected_hopeless, 1u);
}

TEST(AdaptiveEngineTest, NoDeadlineNeverShedsAndColdPlannerNeverSheds) {
  EngineFixture fx;
  InferenceEngineOptions options;
  options.num_workers = 1;
  options.cache_bytes = 0;
  options.planner = &fx.planner;  // cold: no telemetry yet
  InferenceEngine engine(fx.frozen.get(), options);

  // Cold planner => estimate 0 => even a past deadline is admitted (the
  // engine has no evidence it cannot be met; deadlines stay scheduling
  // hints until telemetry says otherwise).
  InferenceRequest cold;
  cold.series = MakeSeries(60, 2, 4000);
  cold.deadline = ServeClock::now() - std::chrono::milliseconds(5);
  EXPECT_TRUE(engine.Run(std::move(cold)).status.ok());
  EXPECT_EQ(engine.stats().rejected_hopeless, 0u);
}

TEST(AdaptiveEngineTest, ConcurrentClientsWithAdaptivePlannerStayCorrect) {
  EngineFixture fx;
  InferenceEngineOptions options;
  options.num_workers = 2;
  options.max_micro_batch = 8;
  options.cache_bytes = 0;
  options.planner = &fx.planner;
  InferenceEngine engine(fx.frozen.get(), options);

  // Reference outputs from a solo engine without a planner.
  const int kDistinct = 8;
  std::vector<Tensor> want(kDistinct);
  {
    InferenceEngineOptions solo;
    solo.num_workers = 1;
    solo.cache_bytes = 0;
    InferenceEngine reference(fx.frozen.get(), solo);
    for (int i = 0; i < kDistinct; ++i) {
      InferenceRequest request;
      request.series = MakeSeries(60, 2, 5000 + static_cast<uint64_t>(i));
      InferenceResponse response = reference.Run(std::move(request));
      ASSERT_TRUE(response.status.ok());
      want[static_cast<size_t>(i)] = response.output;
    }
  }

  // 8 clients hammer the adaptive engine; every output must stay
  // bit-identical to the solo path while telemetry ingestion runs under the
  // executors' feet (TSan-checked in CI).
  std::vector<std::thread> clients;
  std::atomic<int> mismatches{0};
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < 24; ++i) {
        const int64_t idx = (c + i) % kDistinct;
        InferenceRequest request;
        request.series = MakeSeries(60, 2, 5000 + static_cast<uint64_t>(idx));
        const InferenceResponse response = engine.Run(std::move(request));
        if (!response.status.ok() ||
            std::memcmp(response.output.data(),
                        want[static_cast<size_t>(idx)].data(),
                        sizeof(float) * response.output.numel()) != 0) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  const InferenceEngineStats stats = engine.stats();
  EXPECT_GE(stats.planner_samples, stats.batches);
  EXPECT_LE(stats.planner_batch, stats.planner_ceiling);
}

}  // namespace
}  // namespace serve
}  // namespace rita
