// Tests for the distributed serving layer: the wire format's round-trip
// property (serde is the single source of truth — these tests pin it), the
// framed transport's behavior under hostile input (partial reads, garbage,
// version skew, truncation — every failure a typed Status, never a crash),
// the serve::Client conformance contract (LocalClient and RemoteClient are
// interchangeable, bit-identically), and the router's consistent hashing,
// typed backpressure, and replica-death handling. Everything here runs
// in-process (threads + loopback sockets); the separate
// dist_integration_test forks real replica processes.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "dist/replica_server.h"
#include "dist/router.h"
#include "dist/serde.h"
#include "dist/transport.h"
#include "serve/client.h"
#include "serve/frozen_model.h"
#include "serve/inference_engine.h"
#include "serve/model_registry.h"

namespace rita {
namespace dist {
namespace {

model::RitaConfig SmallConfig() {
  model::RitaConfig config;
  config.input_channels = 2;
  config.input_length = 60;
  config.window = 5;
  config.stride = 5;
  config.num_classes = 4;
  config.encoder.dim = 16;
  config.encoder.num_layers = 2;
  config.encoder.num_heads = 2;
  config.encoder.ffn_hidden = 32;
  config.encoder.attention.kind = attn::AttentionKind::kGroup;
  config.encoder.attention.group.num_groups = 4;
  return config;
}

Tensor MakeSeries(int64_t t, int64_t c, uint64_t seed) {
  Rng rng(seed);
  return Tensor::RandNormal({t, c}, &rng);
}

bool BitEqual(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), sizeof(float) * a.numel()) == 0;
}

// ---------------------------------------------------------------------------
// Status wire contract.

TEST(DistSerdeTest, StatusCodeWireValuesArePinned) {
  // These numeric values ARE the cross-version wire contract (util/status.h
  // declares them append-only). A failure here means an enum value moved —
  // which would silently corrupt every deployed fleet's error taxonomy.
  EXPECT_EQ(StatusCodeToWire(StatusCode::kOk), 0u);
  EXPECT_EQ(StatusCodeToWire(StatusCode::kInvalidArgument), 1u);
  EXPECT_EQ(StatusCodeToWire(StatusCode::kNotFound), 2u);
  EXPECT_EQ(StatusCodeToWire(StatusCode::kOutOfMemory), 3u);
  EXPECT_EQ(StatusCodeToWire(StatusCode::kIoError), 4u);
  EXPECT_EQ(StatusCodeToWire(StatusCode::kNotSupported), 5u);
  EXPECT_EQ(StatusCodeToWire(StatusCode::kInternal), 6u);
  EXPECT_EQ(StatusCodeToWire(StatusCode::kDeadlineUnmeetable), 7u);
  EXPECT_EQ(StatusCodeToWire(StatusCode::kUnavailable), 8u);

  for (uint32_t wire = 0; wire <= 8; ++wire) {
    StatusCode code;
    ASSERT_TRUE(StatusCodeFromWire(wire, &code)) << wire;
    EXPECT_EQ(StatusCodeToWire(code), wire);
  }
  StatusCode code;
  EXPECT_FALSE(StatusCodeFromWire(999, &code));
}

TEST(DistSerdeTest, StatusRoundTripsEveryCode) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfMemory, StatusCode::kIoError,
        StatusCode::kNotSupported, StatusCode::kInternal,
        StatusCode::kDeadlineUnmeetable, StatusCode::kUnavailable}) {
    Status original = Status::FromCode(code, code == StatusCode::kOk
                                                 ? ""
                                                 : "message for the wire");
    WireWriter w;
    EncodeStatus(original, &w);
    WireReader r(w.buffer());
    Status decoded;
    ASSERT_TRUE(DecodeStatus(&r, &decoded).ok());
    ASSERT_TRUE(r.Finish().ok());
    EXPECT_EQ(decoded.code(), original.code());
    EXPECT_EQ(decoded.message(), original.message());
  }
}

TEST(DistSerdeTest, UnknownWireCodeMapsToInternalNotCrash) {
  // A newer peer may send a code this build does not know. The decode stays
  // OK (the frame is well-formed) and the code degrades to kInternal with
  // the message preserved.
  WireWriter w;
  w.U32(57);  // no such StatusCode
  w.Str("from the future");
  WireReader r(w.buffer());
  Status decoded;
  ASSERT_TRUE(DecodeStatus(&r, &decoded).ok());
  EXPECT_EQ(decoded.code(), StatusCode::kInternal);
  EXPECT_NE(decoded.message().find("from the future"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Request / response round-trip property.

serve::InferenceRequest RandomRequest(Rng* rng, uint64_t seed) {
  serve::InferenceRequest request;
  const int64_t t = 5 + static_cast<int64_t>(rng->NextU64() % 56);
  request.series = MakeSeries(t, 2, seed);
  request.task = static_cast<serve::ServeTask>(rng->NextU64() % 3);
  request.priority = static_cast<serve::Priority>(rng->NextU64() % 2);
  request.model_id = static_cast<int64_t>(rng->NextU64() % 4);
  request.want_context = (rng->NextU64() % 2) == 0;
  request.trace_id = rng->NextU64();
  if (rng->NextU64() % 3 == 0) {
    Rng ctx_rng(seed ^ 0x9e3779b97f4a7c15ull);
    request.context = Tensor::RandNormal({16}, &ctx_rng);
  }
  return request;
}

TEST(DistSerdeTest, RequestRoundTripIsByteStable) {
  // Property: decode(encode(x)) == x field-for-field AND
  // encode(decode(encode(x))) == encode(x) byte-for-byte. Byte stability is
  // what lets the replica's cache key (computed over the decoded request)
  // match across processes. Deadlines are excluded here — they cross the
  // wire as remaining-time and are re-anchored on decode (tested below).
  Rng rng(1234);
  for (int iter = 0; iter < 50; ++iter) {
    serve::InferenceRequest original = RandomRequest(&rng, 1000 + iter);
    WireWriter w1;
    EncodeRequest(original, &w1);

    WireReader r(w1.buffer());
    serve::InferenceRequest decoded;
    ASSERT_TRUE(DecodeRequest(&r, &decoded).ok());
    ASSERT_TRUE(r.Finish().ok());

    EXPECT_EQ(decoded.task, original.task);
    EXPECT_EQ(decoded.priority, original.priority);
    EXPECT_EQ(decoded.model_id, original.model_id);
    EXPECT_EQ(decoded.want_context, original.want_context);
    EXPECT_EQ(decoded.trace_id, original.trace_id);
    EXPECT_EQ(decoded.deadline, serve::kNoDeadline);
    EXPECT_TRUE(BitEqual(decoded.series, original.series));
    EXPECT_EQ(decoded.context.defined(), original.context.defined());
    if (original.context.defined()) {
      EXPECT_TRUE(BitEqual(decoded.context, original.context));
    }

    WireWriter w2;
    EncodeRequest(decoded, &w2);
    EXPECT_EQ(w1.buffer(), w2.buffer()) << "re-encode diverged, iter " << iter;
  }
}

TEST(DistSerdeTest, DeadlineCrossesAsRemainingTime) {
  serve::InferenceRequest request;
  request.series = MakeSeries(10, 2, 7);
  request.deadline = serve::ServeClock::now() + std::chrono::milliseconds(500);
  WireWriter w;
  EncodeRequest(request, &w);
  WireReader r(w.buffer());
  serve::InferenceRequest decoded;
  ASSERT_TRUE(DecodeRequest(&r, &decoded).ok());
  ASSERT_NE(decoded.deadline, serve::kNoDeadline);
  const double remaining_ms =
      std::chrono::duration<double, std::milli>(decoded.deadline -
                                                serve::ServeClock::now())
          .count();
  EXPECT_GT(remaining_ms, 0.0);
  EXPECT_LE(remaining_ms, 500.0 + 1e-3);

  // A deadline already in the past crosses as zero remaining, not negative
  // garbage — the receiving engine's hopeless-shed logic sees it immediately.
  serve::InferenceRequest late;
  late.series = MakeSeries(10, 2, 8);
  late.deadline = serve::ServeClock::now() - std::chrono::seconds(5);
  WireWriter w2;
  EncodeRequest(late, &w2);
  WireReader r2(w2.buffer());
  serve::InferenceRequest decoded_late;
  ASSERT_TRUE(DecodeRequest(&r2, &decoded_late).ok());
  EXPECT_LE(decoded_late.deadline, serve::ServeClock::now());
}

TEST(DistSerdeTest, ResponseRoundTripsBitwise) {
  Rng rng(99);
  for (int iter = 0; iter < 30; ++iter) {
    serve::InferenceResponse original;
    original.status = (iter % 4 == 0)
                          ? Status::OutOfMemory("backpressure")
                          : Status::OK();
    Rng out_rng(500 + iter);
    original.output = Tensor::RandNormal(
        {1 + static_cast<int64_t>(rng.NextU64() % 8)}, &out_rng);
    original.queue_ms = 0.25 * iter;
    original.compute_ms = 1.5 * iter;
    original.micro_batch = iter % 7;
    original.cache_hit = (iter % 3) == 0;
    original.model_id = iter % 5;
    if (iter % 2 == 0) {
      Rng ctx_rng(900 + iter);
      original.context = Tensor::RandNormal({16}, &ctx_rng);
    }

    WireWriter w1;
    EncodeResponse(original, &w1);
    WireReader r(w1.buffer());
    serve::InferenceResponse decoded;
    ASSERT_TRUE(DecodeResponse(&r, &decoded).ok());
    ASSERT_TRUE(r.Finish().ok());

    EXPECT_EQ(decoded.status.code(), original.status.code());
    EXPECT_EQ(decoded.queue_ms, original.queue_ms);
    EXPECT_EQ(decoded.compute_ms, original.compute_ms);
    EXPECT_EQ(decoded.micro_batch, original.micro_batch);
    EXPECT_EQ(decoded.cache_hit, original.cache_hit);
    EXPECT_EQ(decoded.model_id, original.model_id);
    EXPECT_TRUE(BitEqual(decoded.output, original.output));

    WireWriter w2;
    EncodeResponse(decoded, &w2);
    EXPECT_EQ(w1.buffer(), w2.buffer());
  }
}

TEST(DistSerdeTest, EngineStatsRoundTripAndAccumulate) {
  serve::InferenceEngineStats a;
  a.completed = 10;
  a.rejected_invalid = 1;
  a.rejected_backpressure = 2;
  a.rejected_hopeless = 3;
  a.batches = 4;
  a.cache_hits = 5;
  a.cache_misses = 6;
  a.deadline_missed = 7;
  a.max_micro_batch = 8;
  a.total_queue_ms = 9.5;
  a.total_compute_ms = 10.5;
  a.max_compute_ms = 11.5;
  a.graph_batches = 12;
  a.graph_nodes = 13;
  a.total_critical_path_ms = 14.5;
  a.total_graph_idle_ms = 15.5;
  a.graph_ready_high_water = 16;
  a.forward_failures = 17;
  a.queue_depth = 18;

  WireWriter w;
  EncodeEngineStats(a, &w);
  WireReader r(w.buffer());
  serve::InferenceEngineStats decoded;
  ASSERT_TRUE(DecodeEngineStats(&r, &decoded).ok());
  ASSERT_TRUE(r.Finish().ok());
  EXPECT_EQ(decoded.completed, a.completed);
  EXPECT_EQ(decoded.max_micro_batch, a.max_micro_batch);
  EXPECT_EQ(decoded.total_compute_ms, a.total_compute_ms);
  EXPECT_EQ(decoded.queue_depth, a.queue_depth);

  // Fleet merge semantics: counters/sums add, maxima max.
  serve::InferenceEngineStats b = a;
  b.completed = 100;
  b.max_micro_batch = 2;
  b.max_compute_ms = 99.0;
  serve::InferenceEngineStats merged;
  AccumulateEngineStats(a, &merged);
  AccumulateEngineStats(b, &merged);
  EXPECT_EQ(merged.completed, 110u);
  EXPECT_EQ(merged.max_micro_batch, 8);      // max, not sum
  EXPECT_EQ(merged.max_compute_ms, 99.0);    // max, not sum
  EXPECT_EQ(merged.total_compute_ms, 21.0);  // sum
}

TEST(DistSerdeTest, ModelSetRoundTrips) {
  std::vector<serve::ModelInfo> models;
  serve::ModelInfo m;
  m.name = "rita-group-4";
  m.fingerprint = 0xdeadbeefcafef00dull;
  m.precision = Precision::kFp32;
  m.weight_bytes = 12345;
  m.num_groups = 4;
  models.push_back(m);
  m.name = "rita-int8";
  m.precision = Precision::kInt8;
  models.push_back(m);

  WireWriter w;
  EncodeModelSet(models, &w);
  WireReader r(w.buffer());
  std::vector<serve::ModelInfo> decoded;
  ASSERT_TRUE(DecodeModelSet(&r, &decoded).ok());
  ASSERT_TRUE(r.Finish().ok());
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].name, "rita-group-4");
  EXPECT_EQ(decoded[0].fingerprint, 0xdeadbeefcafef00dull);
  EXPECT_EQ(decoded[1].precision, Precision::kInt8);
  EXPECT_EQ(decoded[1].num_groups, 4);
}

TEST(DistSerdeTest, GarbageBytesNeverCrashDecoders) {
  // Fuzz-style: random byte strings through every decoder. The property is
  // "typed error or valid decode, never a crash / sanitizer report / huge
  // allocation". Run under ASan/UBSan in CI.
  Rng rng(31337);
  for (int iter = 0; iter < 300; ++iter) {
    const size_t n = rng.NextU64() % 256;
    std::vector<uint8_t> bytes(n);
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.NextU64());

    {
      WireReader r(bytes);
      serve::InferenceRequest out;
      (void)DecodeRequest(&r, &out);
    }
    {
      WireReader r(bytes);
      serve::InferenceResponse out;
      (void)DecodeResponse(&r, &out);
    }
    {
      WireReader r(bytes);
      serve::InferenceEngineStats out;
      (void)DecodeEngineStats(&r, &out);
    }
    {
      WireReader r(bytes);
      std::vector<obs::MetricsRegistry::FamilySnapshot> out;
      (void)DecodeMetricFamilies(&r, &out);
    }
    {
      WireReader r(bytes);
      std::vector<serve::ModelInfo> out;
      (void)DecodeModelSet(&r, &out);
    }
  }
}

TEST(DistSerdeTest, TruncatedValidRequestIsTypedError) {
  // Every strict prefix of a valid encoding must fail with a typed status,
  // not decode to something else (Finish() also catches trailing bytes).
  Rng rng(5);
  serve::InferenceRequest request = RandomRequest(&rng, 77);
  WireWriter w;
  EncodeRequest(request, &w);
  const std::vector<uint8_t>& full = w.buffer();
  for (size_t cut : {size_t{0}, size_t{1}, full.size() / 2, full.size() - 1}) {
    WireReader r(full.data(), cut);
    serve::InferenceRequest out;
    Status st = DecodeRequest(&r, &out);
    if (st.ok()) st = r.Finish();
    EXPECT_FALSE(st.ok()) << "prefix of " << cut << " bytes decoded";
  }
}

TEST(DistSerdeTest, RouteKeyIsDeterministicAndContentSensitive) {
  serve::InferenceRequest a;
  a.series = MakeSeries(60, 2, 42);
  a.model_id = 1;
  serve::InferenceRequest same;
  same.series = MakeSeries(60, 2, 42);  // same seed => same bytes
  same.model_id = 1;
  EXPECT_EQ(RouteKey(a), RouteKey(same));

  serve::InferenceRequest different_content;
  different_content.series = MakeSeries(60, 2, 43);
  different_content.model_id = 1;
  EXPECT_NE(RouteKey(a), RouteKey(different_content));

  serve::InferenceRequest different_model = same;
  different_model.series = MakeSeries(60, 2, 42);
  different_model.model_id = 2;
  EXPECT_NE(RouteKey(a), RouteKey(different_model));

  // trace_id and priority are delivery metadata, not content: they must NOT
  // change the routing (or retries would lose cache affinity).
  serve::InferenceRequest retried;
  retried.series = MakeSeries(60, 2, 42);
  retried.model_id = 1;
  retried.trace_id = 999;
  retried.priority = serve::Priority::kBatch;
  EXPECT_EQ(RouteKey(a), RouteKey(retried));
}

// ---------------------------------------------------------------------------
// Framed transport over a socketpair (fuzz-style hostile peers).

struct SocketPair {
  Connection a, b;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = Connection(fds[0]);
    b = Connection(fds[1]);
  }
};

void SendRaw(Connection& c, const void* data, size_t n) {
  ASSERT_EQ(::send(c.fd(), data, n, 0), static_cast<ssize_t>(n));
}

TEST(DistTransportTest, FrameRoundTripsOverSocketpair) {
  SocketPair sp;
  std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  ASSERT_TRUE(sp.a.WriteFrame(MessageType::kRequest, payload).ok());
  MessageType type;
  std::vector<uint8_t> got;
  ASSERT_TRUE(sp.b.ReadFrame(&type, &got, 1000.0, 1000.0).ok());
  EXPECT_EQ(type, MessageType::kRequest);
  EXPECT_EQ(got, payload);
}

TEST(DistTransportTest, PartialWritesReassembleIntoOneFrame) {
  // A slow peer dribbling one byte at a time must still deliver a complete
  // frame — ReadFrame loops on short reads with the io timeout per chunk.
  SocketPair sp;
  WireWriter w;
  w.Str("dribbled payload");
  std::vector<uint8_t> frame;
  {
    // Build the full frame by writing into a second socketpair and reading
    // the raw bytes back — keeps the header layout knowledge in one place.
    SocketPair staging;
    ASSERT_TRUE(staging.a.WriteFrame(MessageType::kPing, w.buffer()).ok());
    frame.resize(kFrameHeaderBytes + w.buffer().size());
    ASSERT_EQ(::recv(staging.b.fd(), frame.data(), frame.size(), MSG_WAITALL),
              static_cast<ssize_t>(frame.size()));
  }
  std::thread dribbler([&] {
    for (uint8_t byte : frame) {
      SendRaw(sp.a, &byte, 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  MessageType type;
  std::vector<uint8_t> got;
  Status st = sp.b.ReadFrame(&type, &got, 5000.0, 5000.0);
  dribbler.join();
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(type, MessageType::kPing);
  EXPECT_EQ(got, w.buffer());
}

TEST(DistTransportTest, BadMagicIsTypedInvalidArgument) {
  SocketPair sp;
  const uint8_t garbage[12] = {'G', 'E', 'T', ' ', '/', ' ',
                               'H', 'T', 'T', 'P', '/', '1'};
  SendRaw(sp.a, garbage, sizeof(garbage));
  MessageType type;
  std::vector<uint8_t> payload;
  Status st = sp.b.ReadFrame(&type, &payload, 1000.0, 1000.0);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("magic"), std::string::npos);
}

TEST(DistTransportTest, VersionSkewIsTypedNotSupported) {
  SocketPair sp;
  uint8_t header[12] = {0};
  const uint32_t magic = kFrameMagic;
  const uint16_t wrong_version = kWireVersion + 1;
  const uint16_t type_req = 1;
  const uint32_t len = 0;
  std::memcpy(header + 0, &magic, 4);
  std::memcpy(header + 4, &wrong_version, 2);
  std::memcpy(header + 6, &type_req, 2);
  std::memcpy(header + 8, &len, 4);
  SendRaw(sp.a, header, sizeof(header));
  MessageType type;
  std::vector<uint8_t> payload;
  EXPECT_EQ(sp.b.ReadFrame(&type, &payload, 1000.0, 1000.0).code(),
            StatusCode::kNotSupported);
}

TEST(DistTransportTest, OversizedLengthPrefixRejectedBeforeAllocation) {
  SocketPair sp;
  uint8_t header[12] = {0};
  const uint32_t magic = kFrameMagic;
  const uint16_t version = kWireVersion;
  const uint16_t type_req = 1;
  const uint32_t hostile_len = 0xFFFFFFFFu;  // 4 GiB claim
  std::memcpy(header + 0, &magic, 4);
  std::memcpy(header + 4, &version, 2);
  std::memcpy(header + 6, &type_req, 2);
  std::memcpy(header + 8, &hostile_len, 4);
  SendRaw(sp.a, header, sizeof(header));
  MessageType type;
  std::vector<uint8_t> payload;
  Status st = sp.b.ReadFrame(&type, &payload, 1000.0, 1000.0);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(payload.empty()) << "allocated for a hostile length prefix";
}

TEST(DistTransportTest, MidFrameDisconnectIsTypedIoError) {
  SocketPair sp;
  uint8_t header[12] = {0};
  const uint32_t magic = kFrameMagic;
  const uint16_t version = kWireVersion;
  const uint16_t type_req = 1;
  const uint32_t len = 100;  // promise 100 bytes...
  std::memcpy(header + 0, &magic, 4);
  std::memcpy(header + 4, &version, 2);
  std::memcpy(header + 6, &type_req, 2);
  std::memcpy(header + 8, &len, 4);
  SendRaw(sp.a, header, sizeof(header));
  const uint8_t partial[10] = {0};  // ...deliver 10...
  SendRaw(sp.a, partial, sizeof(partial));
  sp.a.Close();  // ...vanish.
  MessageType type;
  std::vector<uint8_t> payload;
  ReadEvent event;
  Status st = sp.b.ReadFrame(&type, &payload, 1000.0, 1000.0, &event);
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_FALSE(event.clean_eof);  // truncation, NOT an orderly close
}

TEST(DistTransportTest, TruncatedHeaderDisconnectIsTypedIoError) {
  SocketPair sp;
  const uint32_t magic = kFrameMagic;
  SendRaw(sp.a, &magic, 4);  // 4 of 12 header bytes
  sp.a.Close();
  MessageType type;
  std::vector<uint8_t> payload;
  ReadEvent event;
  EXPECT_EQ(sp.b.ReadFrame(&type, &payload, 1000.0, 1000.0, &event).code(),
            StatusCode::kIoError);
  EXPECT_FALSE(event.clean_eof);
}

TEST(DistTransportTest, CleanCloseAtFrameBoundaryIsFlagged) {
  SocketPair sp;
  sp.a.Close();
  MessageType type;
  std::vector<uint8_t> payload;
  ReadEvent event;
  Status st = sp.b.ReadFrame(&type, &payload, 1000.0, 1000.0, &event);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(event.clean_eof) << "orderly close mistaken for an error";
}

TEST(DistTransportTest, IdleTimeoutIsFlaggedAndDistinctFromStall) {
  SocketPair sp;
  MessageType type;
  std::vector<uint8_t> payload;
  ReadEvent event;
  Status st = sp.b.ReadFrame(&type, &payload, /*idle_timeout_ms=*/50.0,
                             /*io_timeout_ms=*/5000.0, &event);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(event.idle_timeout);
  EXPECT_FALSE(event.clean_eof);
}

TEST(DistTransportTest, RandomGarbageStreamsNeverCrashTheReader) {
  Rng rng(8675309);
  for (int iter = 0; iter < 50; ++iter) {
    SocketPair sp;
    const size_t n = 1 + rng.NextU64() % 64;
    std::vector<uint8_t> junk(n);
    for (auto& b : junk) b = static_cast<uint8_t>(rng.NextU64());
    SendRaw(sp.a, junk.data(), junk.size());
    sp.a.Close();
    MessageType type;
    std::vector<uint8_t> payload;
    Status st = sp.b.ReadFrame(&type, &payload, 200.0, 200.0);
    EXPECT_FALSE(st.ok());  // nothing 64 random bytes encode is a valid frame
  }
}

TEST(DistTransportTest, ConnectToDeadPortIsTypedUnavailable) {
  // Bind-then-close to obtain a port with nothing listening.
  Listener listener;
  ASSERT_TRUE(listener.Bind("127.0.0.1", 0).ok());
  const int dead_port = listener.port();
  listener.Close();
  Result<Connection> conn = Connection::Connect("127.0.0.1", dead_port, 500.0);
  ASSERT_FALSE(conn.ok());
  EXPECT_EQ(conn.status().code(), StatusCode::kUnavailable);
}

// ---------------------------------------------------------------------------
// ModelRegistry snapshots (hot-swap groundwork).

TEST(ModelRegistrySnapshotTest, SnapshotIsImmutableAcrossRegistration) {
  model::RitaConfig config = SmallConfig();
  Rng rng(11);
  model::RitaModel source(config, &rng);
  serve::FrozenModel frozen_a(source);
  serve::FrozenModel frozen_b(source);

  serve::ModelRegistry registry;
  registry.Register("model-a", &frozen_a);
  auto snapshot_one = registry.Snapshot();
  ASSERT_EQ(snapshot_one->size(), 1u);
  EXPECT_EQ((*snapshot_one)[0].name, "model-a");
  EXPECT_EQ((*snapshot_one)[0].fingerprint, frozen_a.Fingerprint());

  registry.Register("model-b", &frozen_b);
  // The old snapshot is a frozen view: later registrations must not mutate
  // it (readers hold it lock-free across the swap).
  EXPECT_EQ(snapshot_one->size(), 1u);
  auto snapshot_two = registry.Snapshot();
  ASSERT_EQ(snapshot_two->size(), 2u);
  EXPECT_EQ((*snapshot_two)[1].name, "model-b");
}

// ---------------------------------------------------------------------------
// Client conformance: LocalClient and RemoteClient behind serve::Client.

struct Replica {
  std::unique_ptr<serve::FrozenModel> frozen;
  std::unique_ptr<serve::InferenceEngine> engine;
  std::unique_ptr<ReplicaServer> server;
};

// One replica: its own frozen copy of the same source model (same seed =>
// same weights => same fingerprint), its own engine, a loopback server.
Replica MakeReplica(model::RitaModel& source) {
  Replica r;
  r.frozen = std::make_unique<serve::FrozenModel>(source);
  serve::InferenceEngineOptions options;
  options.num_workers = 2;
  r.engine = std::make_unique<serve::InferenceEngine>(r.frozen.get(), options);
  r.server = std::make_unique<ReplicaServer>(r.engine.get(),
                                             ReplicaServerOptions{});
  EXPECT_TRUE(r.server->Start().ok());
  return r;
}

// Exercises any serve::Client the same way; returns the classify outputs so
// callers can bit-compare across backends.
std::vector<Tensor> RunClientWorkload(serve::Client& client) {
  std::vector<Tensor> outputs;
  for (uint64_t seed = 0; seed < 6; ++seed) {
    serve::InferenceRequest request;
    request.series = MakeSeries(60, 2, 100 + seed);
    request.task = serve::ServeTask::kClassify;
    serve::InferenceResponse response = client.SubmitAndWait(std::move(request));
    EXPECT_TRUE(response.status.ok()) << response.status.ToString();
    outputs.push_back(response.output);
  }
  // Embed and reconstruct also flow through the same Submit surface.
  serve::InferenceRequest embed;
  embed.series = MakeSeries(35, 2, 200);
  embed.task = serve::ServeTask::kEmbed;
  serve::InferenceResponse er = client.SubmitAndWait(std::move(embed));
  EXPECT_TRUE(er.status.ok()) << er.status.ToString();
  outputs.push_back(er.output);

  serve::InferenceRequest recon;
  recon.series = MakeSeries(50, 2, 300);
  recon.task = serve::ServeTask::kReconstruct;
  serve::InferenceResponse rr = client.SubmitAndWait(std::move(recon));
  EXPECT_TRUE(rr.status.ok()) << rr.status.ToString();
  outputs.push_back(rr.output);

  // Invalid input surfaces as the same typed rejection through any backend.
  serve::InferenceRequest bad;
  bad.series = Tensor::Zeros({1, 60, 2});  // wrong rank
  EXPECT_EQ(client.SubmitAndWait(std::move(bad)).status.code(),
            StatusCode::kInvalidArgument);
  return outputs;
}

TEST(ClientConformanceTest, LocalAndRemoteBackendsAreBitIdentical) {
  model::RitaConfig config = SmallConfig();
  Rng rng(77);
  model::RitaModel source(config, &rng);

  // Local backend.
  serve::FrozenModel frozen(source);
  serve::InferenceEngineOptions options;
  options.num_workers = 2;
  serve::InferenceEngine engine(&frozen, options);
  serve::LocalClient local(&engine);
  std::vector<Tensor> local_outputs = RunClientWorkload(local);
  EXPECT_GE(local.Stats().completed, 8u);

  // Remote backend: two replicas behind a router, same source weights.
  Replica r0 = MakeReplica(source);
  Replica r1 = MakeReplica(source);
  RouterOptions ropts;
  Router router(ropts);
  router.AddReplica("127.0.0.1", r0.server->port());
  router.AddReplica("127.0.0.1", r1.server->port());
  ASSERT_TRUE(router.Start().ok());
  RemoteClient remote(&router);
  std::vector<Tensor> remote_outputs = RunClientWorkload(remote);

  ASSERT_EQ(local_outputs.size(), remote_outputs.size());
  for (size_t i = 0; i < local_outputs.size(); ++i) {
    EXPECT_TRUE(BitEqual(local_outputs[i], remote_outputs[i]))
        << "output " << i << " diverges between local and remote backends";
  }
  // The fleet served everything the local engine served.
  serve::InferenceEngineStats fleet = remote.Stats();
  EXPECT_GE(fleet.completed, 8u);

  remote.Shutdown();
  local.Shutdown();
}

TEST(RouterTest, RoutingIsStickyAndSpreadsAcrossReplicas) {
  model::RitaConfig config = SmallConfig();
  Rng rng(55);
  model::RitaModel source(config, &rng);
  Replica r0 = MakeReplica(source);
  Replica r1 = MakeReplica(source);
  Router router;
  router.AddReplica("127.0.0.1", r0.server->port());
  router.AddReplica("127.0.0.1", r1.server->port());
  ASSERT_TRUE(router.Start().ok());

  // Sticky: the same request always routes to the same replica (this is
  // what shards the fleet's result caches disjointly).
  serve::InferenceRequest probe;
  probe.series = MakeSeries(60, 2, 1);
  const int first = router.RouteIndex(probe);
  for (int i = 0; i < 10; ++i) {
    serve::InferenceRequest again;
    again.series = MakeSeries(60, 2, 1);
    EXPECT_EQ(router.RouteIndex(again), first);
  }

  // Spread: across many distinct requests, both replicas get traffic.
  int counts[2] = {0, 0};
  for (uint64_t seed = 0; seed < 64; ++seed) {
    serve::InferenceRequest request;
    request.series = MakeSeries(60, 2, 1000 + seed);
    counts[router.RouteIndex(request)]++;
  }
  EXPECT_GT(counts[0], 0);
  EXPECT_GT(counts[1], 0);

  // Cache affinity across the wire: submitting the same series twice hits
  // the routed replica's result cache the second time.
  serve::InferenceRequest once;
  once.series = MakeSeries(60, 2, 7777);
  serve::InferenceResponse first_response =
      router.Submit(std::move(once)).get();
  ASSERT_TRUE(first_response.status.ok());
  EXPECT_FALSE(first_response.cache_hit);
  serve::InferenceRequest twice;
  twice.series = MakeSeries(60, 2, 7777);
  serve::InferenceResponse second_response =
      router.Submit(std::move(twice)).get();
  ASSERT_TRUE(second_response.status.ok());
  EXPECT_TRUE(second_response.cache_hit)
      << "re-routed away from its cache shard";
  EXPECT_TRUE(BitEqual(first_response.output, second_response.output));
}

TEST(RouterTest, OutstandingCapIsTypedBackpressure) {
  model::RitaConfig config = SmallConfig();
  Rng rng(66);
  model::RitaModel source(config, &rng);
  Replica r0 = MakeReplica(source);
  RouterOptions options;
  options.max_outstanding_per_replica = 0;  // everything over cap
  Router router(options);
  router.AddReplica("127.0.0.1", r0.server->port());
  ASSERT_TRUE(router.Start().ok());

  serve::InferenceRequest request;
  request.series = MakeSeries(60, 2, 5);
  serve::InferenceResponse response = router.Submit(std::move(request)).get();
  EXPECT_EQ(response.status.code(), StatusCode::kOutOfMemory)
      << "router-side cap must mirror the engine's typed backpressure, got: "
      << response.status.ToString();
}

TEST(RouterTest, ReplicaDeathYieldsTypedUnavailableAndSurvivorServes) {
  model::RitaConfig config = SmallConfig();
  Rng rng(88);
  model::RitaModel source(config, &rng);
  Replica r0 = MakeReplica(source);
  Replica r1 = MakeReplica(source);
  Router router;
  router.AddReplica("127.0.0.1", r0.server->port());
  router.AddReplica("127.0.0.1", r1.server->port());
  ASSERT_TRUE(router.Start().ok());
  EXPECT_EQ(router.num_live(), 2);

  // Kill replica 0's server out from under the router.
  r0.server->Shutdown();

  // Requests that hit the dead replica fail with retryable kUnavailable;
  // retries re-route onto the rebuilt ring. Nothing hangs, nothing crashes.
  int unavailable = 0, served = 0;
  std::vector<std::string> failure_log;
  for (uint64_t seed = 0; seed < 32; ++seed) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      serve::InferenceRequest request;
      request.series = MakeSeries(60, 2, 4000 + seed);
      serve::InferenceResponse response =
          router.Submit(std::move(request)).get();
      if (response.status.ok()) {
        ++served;
        break;
      }
      ASSERT_EQ(response.status.code(), StatusCode::kUnavailable)
          << response.status.ToString();
      ++unavailable;
      failure_log.push_back("seed " + std::to_string(seed) + " attempt " +
                            std::to_string(attempt) + ": " +
                            response.status.ToString());
    }
  }
  std::string log;
  for (const auto& line : failure_log) log += line + "\n";
  EXPECT_EQ(served, 32) << "survivor must keep serving every retried request\n"
                        << log;
  EXPECT_GT(unavailable, 0) << "shutdown never surfaced (dead code path?)";
  EXPECT_EQ(router.num_live(), 1);
  EXPECT_FALSE(router.replica_live(0));
  EXPECT_TRUE(router.replica_live(1));
}

TEST(RouterTest, FleetMetricsCarryReplicaLabels) {
  model::RitaConfig config = SmallConfig();
  Rng rng(99);
  model::RitaModel source(config, &rng);
  Replica r0 = MakeReplica(source);
  Replica r1 = MakeReplica(source);
  Router router;
  router.AddReplica("127.0.0.1", r0.server->port());
  router.AddReplica("127.0.0.1", r1.server->port());
  ASSERT_TRUE(router.Start().ok());

  // Put some traffic through so the counters are nonzero.
  for (uint64_t seed = 0; seed < 8; ++seed) {
    serve::InferenceRequest request;
    request.series = MakeSeries(60, 2, 9000 + seed);
    ASSERT_TRUE(router.Submit(std::move(request)).get().status.ok());
  }

  const std::string text = router.FleetPrometheusText();
  const std::string label0 =
      "replica=\"127.0.0.1:" + std::to_string(r0.server->port()) + "\"";
  const std::string label1 =
      "replica=\"127.0.0.1:" + std::to_string(r1.server->port()) + "\"";
  EXPECT_NE(text.find(label0), std::string::npos) << text.substr(0, 2000);
  EXPECT_NE(text.find(label1), std::string::npos);
  EXPECT_NE(text.find("rita_fleet_replicas_live 2"), std::string::npos);
  EXPECT_NE(text.find("rita_requests_completed_total"), std::string::npos);

  // Model sets agree (same source weights => same fingerprints).
  EXPECT_TRUE(router.CheckModelSetsConsistent().ok());
}

TEST(RouterTest, MismatchedFleetFailsConsistencyCheck) {
  model::RitaConfig config = SmallConfig();
  Rng rng_a(1), rng_b(2);  // different seeds => different fingerprints
  model::RitaModel source_a(config, &rng_a);
  model::RitaModel source_b(config, &rng_b);
  Replica r0 = MakeReplica(source_a);
  Replica r1 = MakeReplica(source_b);
  Router router;
  router.AddReplica("127.0.0.1", r0.server->port());
  router.AddReplica("127.0.0.1", r1.server->port());
  ASSERT_TRUE(router.Start().ok());
  Status st = router.CheckModelSetsConsistent();
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("diverge"), std::string::npos);
}

TEST(RouterTest, ShutdownReplicasFiresRemoteShutdownHook) {
  model::RitaConfig config = SmallConfig();
  Rng rng(44);
  model::RitaModel source(config, &rng);
  serve::FrozenModel frozen(source);
  serve::InferenceEngineOptions eopts;
  serve::InferenceEngine engine(&frozen, eopts);
  std::promise<void> fired;
  ReplicaServerOptions sopts;
  sopts.on_remote_shutdown = [&fired] { fired.set_value(); };
  ReplicaServer server(&engine, sopts);
  ASSERT_TRUE(server.Start().ok());

  Router router;
  router.AddReplica("127.0.0.1", server.port());
  ASSERT_TRUE(router.Start().ok());
  router.ShutdownReplicas();
  // The hook runs on the replica's handler thread; bounded wait.
  EXPECT_EQ(fired.get_future().wait_for(std::chrono::seconds(5)),
            std::future_status::ready);
}

TEST(RouterTest, StartFailsTypedWhenAReplicaIsUnreachable) {
  Listener listener;
  ASSERT_TRUE(listener.Bind("127.0.0.1", 0).ok());
  const int dead_port = listener.port();
  listener.Close();

  Router router;
  router.AddReplica("127.0.0.1", dead_port);
  Status st = router.Start();
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
}

TEST(ReplicaServerTest, SurvivesGarbageConnectionsAndKeepsServing) {
  model::RitaConfig config = SmallConfig();
  Rng rng(12);
  model::RitaModel source(config, &rng);
  Replica r = MakeReplica(source);

  // Hostile peers: garbage bytes, a hostile length prefix, an instant
  // disconnect. Each costs the server one protocol error, never the process.
  for (int hostile = 0; hostile < 3; ++hostile) {
    Result<Connection> conn =
        Connection::Connect("127.0.0.1", r.server->port(), 1000.0);
    ASSERT_TRUE(conn.ok());
    Connection c = conn.MoveValueOrDie();
    if (hostile == 0) {
      const char junk[] = "GET / HTTP/1.1\r\n\r\n";
      ::send(c.fd(), junk, sizeof(junk), MSG_NOSIGNAL);
    } else if (hostile == 1) {
      uint8_t header[12] = {0};
      const uint32_t magic = kFrameMagic;
      const uint16_t version = kWireVersion;
      const uint16_t type_req = 1;
      const uint32_t hostile_len = 0xFFFFFFFFu;
      std::memcpy(header + 0, &magic, 4);
      std::memcpy(header + 4, &version, 2);
      std::memcpy(header + 6, &type_req, 2);
      std::memcpy(header + 8, &hostile_len, 4);
      ::send(c.fd(), header, sizeof(header), MSG_NOSIGNAL);
    }
    c.Close();
  }

  // A well-formed client still gets served after the abuse.
  Router router;
  router.AddReplica("127.0.0.1", r.server->port());
  ASSERT_TRUE(router.Start().ok());
  serve::InferenceRequest request;
  request.series = MakeSeries(60, 2, 21);
  serve::InferenceResponse response = router.Submit(std::move(request)).get();
  EXPECT_TRUE(response.status.ok()) << response.status.ToString();
}

}  // namespace
}  // namespace dist
}  // namespace rita
