// Tests for the adaptive scheduler: Lemma 1 threshold, the Eq. 5 merge test,
// the Lemma 2 merge-safety property and the momentum update of N.
#include <gtest/gtest.h>

#include <cmath>

#include "core/adaptive_scheduler.h"

namespace rita {
namespace core {
namespace {

GroupingSnapshot MakeSnapshot(const std::vector<std::vector<float>>& centroids,
                              const std::vector<float>& radii, float ball_radius,
                              const std::vector<int64_t>& counts) {
  GroupingSnapshot snap;
  const int64_t ng = static_cast<int64_t>(centroids.size());
  const int64_t d = static_cast<int64_t>(centroids[0].size());
  snap.centroids = Tensor({ng, d});
  for (int64_t i = 0; i < ng; ++i) {
    for (int64_t j = 0; j < d; ++j) snap.centroids.At({i, j}) = centroids[i][j];
  }
  snap.radii = radii;
  snap.counts = counts;
  snap.key_ball_radius = ball_radius;
  return snap;
}

TEST(SchedulerTest, DistanceThresholdFormula) {
  // d = ln(eps) / (2R), Lemma 1.
  EXPECT_NEAR(AdaptiveScheduler::DistanceThreshold(2.0f, 1.0f), std::log(2.0f) / 2.0f,
              1e-6f);
  EXPECT_NEAR(AdaptiveScheduler::DistanceThreshold(3.0f, 5.0f), std::log(3.0f) / 10.0f,
              1e-6f);
  // Larger eps tolerance -> larger allowed distance.
  EXPECT_GT(AdaptiveScheduler::DistanceThreshold(3.0f, 1.0f),
            AdaptiveScheduler::DistanceThreshold(1.5f, 1.0f));
}

TEST(SchedulerTest, RejectsInvalidEpsilon) {
  AdaptiveSchedulerOptions opts;
  opts.epsilon = 0.9f;
  EXPECT_DEATH(AdaptiveScheduler{opts}, "epsilon");
}

TEST(SchedulerTest, TightClustersAreMergeable) {
  AdaptiveSchedulerOptions opts;
  opts.epsilon = 3.0f;
  AdaptiveScheduler sched(opts);
  // Ball radius small -> threshold d = ln(3)/(2*0.5) ~ 1.1; clusters nearly
  // coincide with tiny radii, so every S2 cluster can merge into S1.
  auto snap = MakeSnapshot({{0.0f, 0.0f}, {0.01f, 0.0f}, {0.0f, 0.01f}, {0.01f, 0.01f}},
                           {0.01f, 0.01f, 0.01f, 0.01f}, 0.5f, {5, 5, 5, 5});
  EXPECT_EQ(sched.CountMergeable(snap), 2);  // both S2 members marked
}

TEST(SchedulerTest, DistantClustersAreNotMergeable) {
  AdaptiveSchedulerOptions opts;
  opts.epsilon = 1.5f;
  AdaptiveScheduler sched(opts);
  auto snap = MakeSnapshot({{0.0f, 0.0f}, {100.0f, 0.0f}, {0.0f, 100.0f}, {50.0f, 50.0f}},
                           {0.1f, 0.1f, 0.1f, 0.1f}, 10.0f, {5, 5, 5, 5});
  EXPECT_EQ(sched.CountMergeable(snap), 0);
}

TEST(SchedulerTest, SingleClusterNothingToMerge) {
  AdaptiveScheduler sched(AdaptiveSchedulerOptions{});
  auto snap = MakeSnapshot({{0.0f, 0.0f}}, {0.1f}, 1.0f, {10});
  EXPECT_EQ(sched.CountMergeable(snap), 0);
}

TEST(SchedulerTest, MomentumUpdateMath) {
  AdaptiveSchedulerOptions opts;
  opts.epsilon = 3.0f;
  opts.momentum = 0.5f;
  opts.min_groups = 2;
  AdaptiveScheduler sched(opts);
  // Snapshot where D = 2 (from TightClustersAreMergeable).
  auto snap = MakeSnapshot({{0.0f, 0.0f}, {0.01f, 0.0f}, {0.0f, 0.01f}, {0.01f, 0.01f}},
                           {0.01f, 0.01f, 0.01f, 0.01f}, 0.5f, {5, 5, 5, 5});
  // N_new = 0.5 * (10 - 2) + 0.5 * 10 = 9.
  EXPECT_EQ(sched.ProposeGroupCount({snap}, 10), 9);
}

TEST(SchedulerTest, NeverIncreasesAndRespectsFloor) {
  AdaptiveSchedulerOptions opts;
  opts.epsilon = 3.0f;
  opts.momentum = 1.0f;
  opts.min_groups = 3;
  AdaptiveScheduler sched(opts);
  auto snap = MakeSnapshot({{0.0f, 0.0f}, {0.01f, 0.0f}, {0.0f, 0.01f}, {0.01f, 0.01f}},
                           {0.01f, 0.01f, 0.01f, 0.01f}, 0.5f, {5, 5, 5, 5});
  // D = 2 with momentum 1: N 4 -> 2, but floor is 3.
  EXPECT_EQ(sched.ProposeGroupCount({snap}, 4), 3);
  // Empty snapshots: unchanged.
  EXPECT_EQ(sched.ProposeGroupCount({}, 7), 7);
}

TEST(SchedulerTest, AveragesAcrossSnapshots) {
  AdaptiveSchedulerOptions opts;
  opts.epsilon = 3.0f;
  opts.momentum = 1.0f;
  opts.min_groups = 1;
  AdaptiveScheduler sched(opts);
  auto mergeable =
      MakeSnapshot({{0.0f, 0.0f}, {0.01f, 0.0f}, {0.0f, 0.01f}, {0.01f, 0.01f}},
                   {0.01f, 0.01f, 0.01f, 0.01f}, 0.5f, {5, 5, 5, 5});
  auto frozen = MakeSnapshot({{0.0f, 0.0f}, {100.0f, 0.0f}, {0.0f, 100.0f}, {50.0f, 50.0f}},
                             {0.1f, 0.1f, 0.1f, 0.1f}, 10.0f, {5, 5, 5, 5});
  // D = (2 + 0) / 2 = 1 -> N 10 -> 9.
  EXPECT_EQ(sched.ProposeGroupCount({mergeable, frozen}, 10), 9);
}

// Lemma 2 property: when Eq. 5's precondition holds, merging keeps every
// member within distance d of the merged center.
TEST(SchedulerTest, Lemma2MergePreservesBound) {
  Rng rng(1);
  const float d = 1.0f;
  // Transfer cluster i at origin with radius 0.3; S2 clusters j1, j2 at
  // distance 0.15 with radius 0.2: |ci-cj| + ri = 0.45 <= d and
  // |ci-cj| + rj = 0.35 <= d/2.
  const int64_t dim = 3;
  std::vector<std::vector<float>> cluster_points;
  std::vector<std::vector<float>> centers = {
      {0.0f, 0.0f, 0.0f}, {0.15f, 0.0f, 0.0f}, {0.0f, 0.15f, 0.0f}};
  std::vector<float> radii = {0.3f, 0.2f, 0.2f};
  std::vector<std::vector<float>> all_points;
  std::vector<float> merged_center(dim, 0.0f);
  int64_t total = 0;
  for (size_t c = 0; c < centers.size(); ++c) {
    for (int i = 0; i < 10; ++i) {
      // Random point within radius of the center.
      std::vector<float> p(dim);
      float norm = 0.0f;
      for (int64_t k = 0; k < dim; ++k) {
        p[k] = static_cast<float>(rng.Normal());
        norm += p[k] * p[k];
      }
      norm = std::sqrt(norm);
      const float r = radii[c] * static_cast<float>(rng.Uniform());
      for (int64_t k = 0; k < dim; ++k) p[k] = centers[c][k] + p[k] / norm * r;
      all_points.push_back(p);
      for (int64_t k = 0; k < dim; ++k) merged_center[k] += p[k];
      ++total;
    }
  }
  for (int64_t k = 0; k < dim; ++k) merged_center[k] /= static_cast<float>(total);
  for (const auto& p : all_points) {
    float dist = 0.0f;
    for (int64_t k = 0; k < dim; ++k) {
      const float diff = p[k] - merged_center[k];
      dist += diff * diff;
    }
    EXPECT_LE(std::sqrt(dist), d) << "Lemma 2 violated";
  }
}

TEST(SchedulerTest, UpdateAppliesToMechanism) {
  Rng rng(2);
  GroupAttentionOptions gopts;
  gopts.num_groups = 8;
  GroupAttentionMechanism mech(4, gopts, &rng);
  // Run a forward with very similar keys so clusters collapse together.
  Tensor k = Tensor::RandNormal({2, 32, 4}, &rng, 0.0f, 0.01f);
  ag::Variable q(Tensor::RandNormal({2, 32, 4}, &rng), false);
  mech.Forward(q, ag::Variable(k), ag::Variable(q));

  AdaptiveSchedulerOptions opts;
  opts.epsilon = 3.0f;
  opts.momentum = 1.0f;
  opts.min_groups = 1;
  AdaptiveScheduler sched(opts);
  const int64_t before = mech.num_groups();
  const int64_t after = sched.Update(&mech);
  EXPECT_LE(after, before);
  EXPECT_EQ(mech.num_groups(), after);
  EXPECT_LT(after, before) << "near-identical keys should trigger merges";
}

}  // namespace
}  // namespace core
}  // namespace rita
