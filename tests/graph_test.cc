// Tests for the task-graph executor and the dataflow forward lowering. The
// acceptance contract: the graph forward is bitwise identical to the
// sequential forward for every task (classify / reconstruct / embed), with
// and without a context token, at pool widths 1 / 4 / 8, under both kernel
// backends — and a throwing node fails its request cleanly (Internal status,
// engine slot freed, pool reusable). Run under RITA_SANITIZE=thread in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "graph/task_graph.h"
#include "linalg/kernels/kernels.h"
#include "serve/frozen_model.h"
#include "serve/inference_engine.h"
#include "util/execution_context.h"
#include "util/thread_pool.h"

namespace rita {
namespace graph {
namespace {

// ---------------------------------------------------------------------------
// GraphExecutor units
// ---------------------------------------------------------------------------

TEST(TaskGraphTest, DiamondRespectsDependencyOrder) {
  ThreadPool pool(4);
  ExecutionContext context(&pool);
  for (int trial = 0; trial < 20; ++trial) {
    TaskGraph g;
    std::mutex mu;
    std::vector<int> order;
    const auto record = [&mu, &order](int id) {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(id);
    };
    const int64_t a = g.AddNode("a", [&] { record(0); });
    const int64_t b = g.AddNode("b", [&] { record(1); });
    const int64_t c = g.AddNode("c", [&] { record(2); });
    const int64_t d = g.AddNode("d", [&] { record(3); });
    g.AddEdge(a, b);
    g.AddEdge(a, c);
    g.AddEdge(b, d);
    g.AddEdge(c, d);

    GraphRunStats stats = GraphExecutor(&context).Run(&g);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order.front(), 0);
    EXPECT_EQ(order.back(), 3);
    EXPECT_EQ(stats.nodes, 4);
    EXPECT_GE(stats.ready_high_water, 1);
  }
}

TEST(TaskGraphTest, WideFanOutRunsEveryNodeOnce) {
  ThreadPool pool(4);
  ExecutionContext context(&pool);
  TaskGraph g;
  std::atomic<int> ran{0};
  const int64_t src = g.AddNode("src", [&ran] { ran.fetch_add(1); });
  const int kFan = 64;
  const int64_t sink = g.AddNode("sink", [&ran] { ran.fetch_add(1); });
  for (int i = 0; i < kFan; ++i) {
    const int64_t mid = g.AddNode("mid", [&ran] { ran.fetch_add(1); });
    g.AddEdge(src, mid);
    g.AddEdge(mid, sink);
  }
  GraphRunStats stats = GraphExecutor(&context).Run(&g);
  EXPECT_EQ(ran.load(), kFan + 2);
  EXPECT_EQ(stats.nodes, kFan + 2);
  // The fan-out makes many nodes simultaneously ready on a 4-wide pool.
  EXPECT_GT(stats.ready_high_water, 1);
  EXPECT_GE(stats.critical_path_ms, 0.0);
  EXPECT_GE(stats.busy_ms, 0.0);
}

TEST(TaskGraphTest, NodeBodiesRunUnderCallersGradMode) {
  ThreadPool pool(2);
  ExecutionContext context(&pool);
  TaskGraph g;
  bool mode_in_node = true;
  g.AddNode("probe", [&mode_in_node] { mode_in_node = ag::GradModeEnabled(); });
  ag::NoGradGuard guard;
  GraphExecutor(&context).Run(&g);
  EXPECT_FALSE(mode_in_node) << "caller's NoGradGuard must reach node bodies";
}

TEST(TaskGraphTest, ExecutorsNestInsideNodes) {
  ThreadPool pool(2);
  ExecutionContext context(&pool);
  TaskGraph outer;
  std::atomic<int> inner_ran{0};
  outer.AddNode("outer", [&context, &inner_ran] {
    // A node that runs a whole sub-graph on the same pool: TaskScope's
    // help-while-waiting makes this deadlock-free even at width 1.
    TaskGraph inner;
    const int64_t a = inner.AddNode("ia", [&inner_ran] { inner_ran.fetch_add(1); });
    const int64_t b = inner.AddNode("ib", [&inner_ran] { inner_ran.fetch_add(1); });
    inner.AddEdge(a, b);
    GraphExecutor(&context).Run(&inner);
  });
  GraphExecutor(&context).Run(&outer);
  EXPECT_EQ(inner_ran.load(), 2);
}

TEST(TaskGraphTest, ThrowingNodeCancelsRunAndLeavesPoolReusable) {
  ThreadPool pool(4);
  ExecutionContext context(&pool);
  TaskGraph g;
  std::atomic<int> downstream_ran{0};
  const int64_t a = g.AddNode("ok", [] {});
  const int64_t boom = g.AddNode("boom", [] {
    throw std::runtime_error("node exploded");
  });
  const int64_t after = g.AddNode("after", [&downstream_ran] {
    downstream_ran.fetch_add(1);
  });
  g.AddEdge(a, boom);
  g.AddEdge(boom, after);

  EXPECT_THROW(GraphExecutor(&context).Run(&g), std::runtime_error);
  // Cancellation skips successor bodies but still drains the graph.
  EXPECT_EQ(downstream_ran.load(), 0);

  // The pool must come out healthy: a fresh graph runs to completion.
  TaskGraph g2;
  std::atomic<int> ran{0};
  const int64_t x = g2.AddNode("x", [&ran] { ran.fetch_add(1); });
  const int64_t y = g2.AddNode("y", [&ran] { ran.fetch_add(1); });
  g2.AddEdge(x, y);
  GraphExecutor(&context).Run(&g2);
  EXPECT_EQ(ran.load(), 2);
}

TEST(TaskGraphTest, ThrowInsideNestedParallelForPropagates) {
  ThreadPool pool(4);
  ExecutionContext context(&pool);
  TaskGraph g;
  g.AddNode("nested-throw", [&context] {
    // Exception raised by a ParallelFor shard inside a node body must
    // surface through the node, cancel the run, and rethrow from Run().
    context.ParallelFor(0, 8, [](int64_t begin, int64_t) {
      if (begin >= 4) throw std::runtime_error("shard exploded");
    });
  });
  EXPECT_THROW(GraphExecutor(&context).Run(&g), std::runtime_error);

  // Both the pool and the context stay usable afterwards.
  std::atomic<int64_t> sum{0};
  context.ParallelFor(0, 16, [&sum](int64_t begin, int64_t end) {
    sum.fetch_add(end - begin);
  });
  EXPECT_EQ(sum.load(), 16);
}

// ---------------------------------------------------------------------------
// Dataflow forward: bit-identity against the sequential path
// ---------------------------------------------------------------------------

model::RitaConfig SmallConfig(attn::AttentionKind kind) {
  model::RitaConfig config;
  config.input_channels = 2;
  config.input_length = 60;
  config.window = 5;
  config.stride = 5;
  config.num_classes = 4;
  config.encoder.dim = 16;
  config.encoder.num_layers = 2;
  config.encoder.num_heads = 2;
  config.encoder.ffn_hidden = 32;
  config.encoder.attention.kind = kind;
  config.encoder.attention.group.num_groups = 4;
  return config;
}

bool BitEqual(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), sizeof(float) * a.numel()) == 0;
}

struct TaskCase {
  ForwardTask task;
  const char* name;
};

// The sequential reference for one (task, context) point.
Tensor SequentialForward(const serve::FrozenModel& frozen, ForwardTask task,
                         const Tensor& batch, const Tensor* context,
                         Tensor* cls) {
  switch (task) {
    case ForwardTask::kClassLogits:
      return frozen.ClassLogitsWithContext(batch, context, cls);
    case ForwardTask::kReconstruct:
      return frozen.ReconstructWithContext(batch, context, cls);
    case ForwardTask::kEmbed: {
      Tensor out = frozen.EmbedWithContext(batch, context);
      if (cls != nullptr) *cls = out;
      return out;
    }
  }
  return Tensor();
}

// Every (kind, task, +-context, pool width, backend) point must match the
// sequential forward bit for bit — the graph lowering is a scheduling
// transformation, never a numerical one.
TEST(ModelGraphTest, BitIdenticalToSequentialForward) {
  const kernels::Backend restore = kernels::ActiveBackend();
  std::vector<kernels::Backend> backends = {kernels::Backend::kScalar};
  if (kernels::SimdAvailable()) backends.push_back(kernels::Backend::kSimd);

  const TaskCase kTasks[] = {{ForwardTask::kClassLogits, "classify"},
                             {ForwardTask::kReconstruct, "reconstruct"},
                             {ForwardTask::kEmbed, "embed"}};
  const int kWidths[] = {1, 4, 8};

  for (attn::AttentionKind kind :
       {attn::AttentionKind::kGroup, attn::AttentionKind::kVanilla}) {
    model::RitaConfig config = SmallConfig(kind);
    Rng rng(42);
    model::RitaModel source(config, &rng);
    serve::FrozenModel frozen(source);

    Rng data_rng(7);
    Tensor batch = Tensor::RandNormal({3, 60, 2}, &data_rng);
    Tensor context_rows = frozen.Embed(batch);  // a plausible [B, dim] carry

    for (kernels::Backend backend : backends) {
      kernels::SetBackendForTesting(backend);
      for (const Tensor* ctx :
           {static_cast<const Tensor*>(nullptr),
            static_cast<const Tensor*>(&context_rows)}) {
        for (const TaskCase& tc : kTasks) {
          Tensor want_cls;
          Tensor want =
              SequentialForward(frozen, tc.task, batch, ctx, &want_cls);
          for (int width : kWidths) {
            ThreadPool pool(width);
            ExecutionContext exec(&pool);
            Tensor got_cls;
            GraphRunStats stats;
            Tensor got = frozen.ForwardGraph(tc.task, batch, ctx, &got_cls,
                                             &exec, &stats);
            EXPECT_TRUE(BitEqual(want, got))
                << tc.name << " kind=" << static_cast<int>(kind)
                << " ctx=" << (ctx != nullptr) << " width=" << width
                << " backend=" << kernels::BackendName(backend);
            EXPECT_TRUE(BitEqual(want_cls, got_cls))
                << tc.name << " [CLS] diverged at width " << width;
            EXPECT_GT(stats.nodes, 0);
            EXPECT_GT(stats.critical_path_ms, 0.0);
          }
        }
      }
    }
  }
  kernels::SetBackendForTesting(restore);
}

// Same request, same graph output, run to run (the executor must not leak
// scheduling nondeterminism into the floats).
TEST(ModelGraphTest, GraphForwardIsDeterministic) {
  model::RitaConfig config = SmallConfig(attn::AttentionKind::kGroup);
  Rng rng(13);
  model::RitaModel source(config, &rng);
  serve::FrozenModel frozen(source);
  Rng data_rng(5);
  Tensor batch = Tensor::RandNormal({2, 60, 2}, &data_rng);

  ThreadPool pool(4);
  ExecutionContext exec(&pool);
  Tensor first = frozen.ForwardGraph(ForwardTask::kReconstruct, batch, nullptr,
                                     nullptr, &exec);
  for (int trial = 0; trial < 5; ++trial) {
    Tensor again = frozen.ForwardGraph(ForwardTask::kReconstruct, batch,
                                       nullptr, nullptr, &exec);
    EXPECT_TRUE(BitEqual(first, again)) << "trial " << trial;
  }
}

// The per-layer `.in` forwarding nodes are fused into their consumers: a
// vanilla model's graph is exactly frontend + head + 5 nodes per layer
// (q/k/v projections, attention join, FFN) — one node fewer per layer than
// the pre-fusion shape — and the fusion is invisible in the bits.
TEST(ModelGraphTest, InForwardingNodesAreFusedAway) {
  model::RitaConfig config = SmallConfig(attn::AttentionKind::kVanilla);
  Rng rng(29);
  model::RitaModel source(config, &rng);
  serve::FrozenModel frozen(source);
  Rng data_rng(11);
  Tensor batch = Tensor::RandNormal({2, 60, 2}, &data_rng);

  Tensor want = frozen.ClassLogits(batch);

  ThreadPool pool(4);
  ExecutionContext exec(&pool);
  GraphRunStats stats;
  Tensor got = frozen.ForwardGraph(ForwardTask::kClassLogits, batch, nullptr,
                                   nullptr, &exec, &stats);
  EXPECT_TRUE(BitEqual(want, got));
  EXPECT_EQ(stats.nodes, 2 + 5 * config.encoder.num_layers);
}

// ---------------------------------------------------------------------------
// Engine wiring: graph executor behind the serve stack
// ---------------------------------------------------------------------------

serve::InferenceRequest MakeRequest(const Tensor& batch, serve::ServeTask task) {
  serve::InferenceRequest request;
  const int64_t t = batch.size(1), c = batch.size(2);
  Tensor series({t, c});
  std::copy(batch.data(), batch.data() + t * c, series.data());
  request.series = series;
  request.task = task;
  return request;
}

TEST(EngineGraphTest, GraphEngineMatchesSequentialEngineBitwise) {
  model::RitaConfig config = SmallConfig(attn::AttentionKind::kGroup);
  Rng rng(21);
  model::RitaModel source(config, &rng);
  serve::FrozenModel frozen(source);

  serve::InferenceEngineOptions graph_options;
  graph_options.use_graph_executor = true;
  graph_options.cache_bytes = 0;
  serve::InferenceEngine graph_engine(&frozen, graph_options);

  serve::InferenceEngineOptions seq_options;
  seq_options.use_graph_executor = false;
  seq_options.cache_bytes = 0;
  serve::InferenceEngine seq_engine(&frozen, seq_options);

  Rng data_rng(3);
  Tensor batch = Tensor::RandNormal({1, 60, 2}, &data_rng);
  for (serve::ServeTask task : {serve::ServeTask::kClassify,
                                serve::ServeTask::kEmbed,
                                serve::ServeTask::kReconstruct}) {
    serve::InferenceResponse via_graph =
        graph_engine.Run(MakeRequest(batch, task));
    serve::InferenceResponse via_seq = seq_engine.Run(MakeRequest(batch, task));
    ASSERT_TRUE(via_graph.status.ok()) << via_graph.status.ToString();
    ASSERT_TRUE(via_seq.status.ok()) << via_seq.status.ToString();
    EXPECT_TRUE(BitEqual(via_graph.output, via_seq.output))
        << "task " << static_cast<int>(task);
  }

  const serve::InferenceEngineStats graph_stats = graph_engine.stats();
  EXPECT_EQ(graph_stats.graph_batches, 3u);
  EXPECT_GT(graph_stats.graph_nodes, 0u);
  EXPECT_GT(graph_stats.AvgGraphNodes(), 0.0);
  EXPECT_GT(graph_stats.total_critical_path_ms, 0.0);
  EXPECT_GT(graph_stats.graph_ready_high_water, 0);
  EXPECT_EQ(seq_engine.stats().graph_batches, 0u);
}

TEST(EngineGraphTest, ThrowingForwardResolvesInternalAndEngineSurvives) {
  model::RitaConfig config = SmallConfig(attn::AttentionKind::kGroup);
  Rng rng(31);
  model::RitaModel source(config, &rng);
  serve::FrozenModel frozen(source);

  std::atomic<bool> armed{true};
  serve::InferenceEngineOptions options;
  options.forward_fault_for_testing = [&armed] {
    if (armed.exchange(false)) throw std::runtime_error("injected fault");
  };
  serve::InferenceEngine engine(&frozen, options);

  Rng data_rng(17);
  Tensor batch = Tensor::RandNormal({1, 60, 2}, &data_rng);

  serve::InferenceResponse failed =
      engine.Run(MakeRequest(batch, serve::ServeTask::kClassify));
  EXPECT_EQ(failed.status.code(), StatusCode::kInternal);
  EXPECT_NE(failed.status.ToString().find("injected fault"), std::string::npos);

  // The worker slot freed and nothing was cached: the SAME request now
  // computes (no stale hit) and succeeds.
  serve::InferenceResponse retried =
      engine.Run(MakeRequest(batch, serve::ServeTask::kClassify));
  ASSERT_TRUE(retried.status.ok()) << retried.status.ToString();
  EXPECT_FALSE(retried.cache_hit);

  const serve::InferenceEngineStats stats = engine.stats();
  EXPECT_EQ(stats.forward_failures, 1u);
  EXPECT_EQ(stats.in_flight_batches, 0);
  EXPECT_EQ(stats.completed, 1u);
}

}  // namespace
}  // namespace graph
}  // namespace rita
