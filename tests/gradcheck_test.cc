// Finite-difference gradient verification for every differentiable op,
// parameterised over representative shapes.
#include <gtest/gtest.h>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "tensor/tensor_ops.h"

namespace rita {
namespace ag {
namespace {

Variable WeightedSum(const Variable& v, const Tensor& w) {
  return SumAll(Mul(v, Variable(w)));
}

// Each case is (name, scalar objective builder over a single input).
struct UnaryCase {
  const char* name;
  Variable (*apply)(const Variable&);
  float lo;  // input sampling range (keeps ops like Log in-domain)
  float hi;
};

Variable ApplyExp(const Variable& x) { return SumAll(Exp(x)); }
Variable ApplyLog(const Variable& x) { return SumAll(Log(x)); }
Variable ApplySqrt(const Variable& x) { return SumAll(Sqrt(x)); }
Variable ApplySquare(const Variable& x) { return SumAll(Square(x)); }
Variable ApplyTanh(const Variable& x) { return SumAll(Tanh(x)); }
Variable ApplySigmoid(const Variable& x) { return SumAll(Sigmoid(x)); }
Variable ApplyGelu(const Variable& x) { return SumAll(Gelu(x)); }
Variable ApplyNeg(const Variable& x) { return SumAll(Neg(x)); }
Variable ApplyMean(const Variable& x) { return MeanAll(x); }
Variable ApplySoftmaxSq(const Variable& x) {
  return SumAll(Square(SoftmaxLastDim(x)));
}
Variable ApplyLogSoftmaxSq(const Variable& x) {
  return SumAll(Square(LogSoftmaxLastDim(x)));
}

class UnaryGradTest : public ::testing::TestWithParam<UnaryCase> {};

TEST_P(UnaryGradTest, MatchesFiniteDifference) {
  const UnaryCase& c = GetParam();
  Rng rng(17);
  Variable x(Tensor::RandUniform({3, 5}, &rng, c.lo, c.hi), true);
  auto f = [&](const std::vector<Variable>& in) { return c.apply(in[0]); };
  auto result = GradCheck(f, {x});
  EXPECT_TRUE(result.ok) << c.name << ": " << result.message;
}

INSTANTIATE_TEST_SUITE_P(
    AllUnaryOps, UnaryGradTest,
    ::testing::Values(UnaryCase{"Exp", ApplyExp, -1.0f, 1.0f},
                      UnaryCase{"Log", ApplyLog, 0.5f, 2.0f},
                      UnaryCase{"Sqrt", ApplySqrt, 0.5f, 2.0f},
                      UnaryCase{"Square", ApplySquare, -1.0f, 1.0f},
                      UnaryCase{"Tanh", ApplyTanh, -1.0f, 1.0f},
                      UnaryCase{"Sigmoid", ApplySigmoid, -1.0f, 1.0f},
                      UnaryCase{"Gelu", ApplyGelu, -1.5f, 1.5f},
                      UnaryCase{"Neg", ApplyNeg, -1.0f, 1.0f},
                      UnaryCase{"Mean", ApplyMean, -1.0f, 1.0f},
                      UnaryCase{"SoftmaxSq", ApplySoftmaxSq, -1.0f, 1.0f},
                      UnaryCase{"LogSoftmaxSq", ApplyLogSoftmaxSq, -1.0f, 1.0f}),
    [](const ::testing::TestParamInfo<UnaryCase>& info) { return info.param.name; });

TEST(BinaryGradTest, AddSubMulDivWithBroadcast) {
  Rng rng(23);
  Tensor w = Tensor::RandNormal({4, 3}, &rng);
  Variable a(Tensor::RandUniform({4, 3}, &rng, 0.5f, 1.5f), true);
  Variable b(Tensor::RandUniform({3}, &rng, 0.5f, 1.5f), true);

  auto check = [&](const char* name, Variable (*op)(const Variable&, const Variable&)) {
    auto f = [&](const std::vector<Variable>& in) {
      return WeightedSum(op(in[0], in[1]), w);
    };
    auto result = GradCheck(f, {a, b});
    EXPECT_TRUE(result.ok) << name << ": " << result.message;
  };
  check("Add", Add);
  check("Sub", Sub);
  check("Mul", Mul);
  check("Div", Div);
}

TEST(MatMulGradTest, AllTransposeCombos) {
  Rng rng(29);
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      Variable a(Tensor::RandNormal(ta ? Shape{4, 3} : Shape{3, 4}, &rng), true);
      Variable b(Tensor::RandNormal(tb ? Shape{5, 4} : Shape{4, 5}, &rng), true);
      Tensor w = Tensor::RandNormal({3, 5}, &rng);
      auto f = [&](const std::vector<Variable>& in) {
        return WeightedSum(MatMul(in[0], in[1], ta, tb), w);
      };
      auto result = GradCheck(f, {a, b});
      EXPECT_TRUE(result.ok) << "ta=" << ta << " tb=" << tb << ": " << result.message;
    }
  }
}

TEST(BmmGradTest, BatchedAndSharedB) {
  Rng rng(31);
  {
    Variable a(Tensor::RandNormal({2, 3, 4}, &rng), true);
    Variable b(Tensor::RandNormal({2, 4, 5}, &rng), true);
    Tensor w = Tensor::RandNormal({2, 3, 5}, &rng);
    auto f = [&](const std::vector<Variable>& in) {
      return WeightedSum(Bmm(in[0], in[1]), w);
    };
    auto result = GradCheck(f, {a, b});
    EXPECT_TRUE(result.ok) << "3Dx3D: " << result.message;
  }
  {
    Variable a(Tensor::RandNormal({2, 3, 4}, &rng), true);
    Variable b(Tensor::RandNormal({4, 5}, &rng), true);
    Tensor w = Tensor::RandNormal({2, 3, 5}, &rng);
    auto f = [&](const std::vector<Variable>& in) {
      return WeightedSum(Bmm(in[0], in[1]), w);
    };
    auto result = GradCheck(f, {a, b});
    EXPECT_TRUE(result.ok) << "3Dx2D: " << result.message;
  }
  {
    // Attention pattern: Q K^T.
    Variable q(Tensor::RandNormal({2, 3, 4}, &rng), true);
    Variable k(Tensor::RandNormal({2, 5, 4}, &rng), true);
    Tensor w = Tensor::RandNormal({2, 3, 5}, &rng);
    auto f = [&](const std::vector<Variable>& in) {
      return WeightedSum(Bmm(in[0], in[1], false, true), w);
    };
    auto result = GradCheck(f, {q, k});
    EXPECT_TRUE(result.ok) << "QKt: " << result.message;
  }
}

TEST(ReduceGradTest, SumAndMeanAlongAxes) {
  Rng rng(37);
  Variable x(Tensor::RandNormal({3, 4, 2}, &rng), true);
  for (int64_t axis = 0; axis < 3; ++axis) {
    for (bool keep : {false, true}) {
      auto f = [&](const std::vector<Variable>& in) {
        return SumAll(Square(Sum(in[0], axis, keep)));
      };
      auto result = GradCheck(f, {x});
      EXPECT_TRUE(result.ok) << "Sum axis " << axis << ": " << result.message;
      auto g = [&](const std::vector<Variable>& in) {
        return SumAll(Square(Mean(in[0], axis, keep)));
      };
      result = GradCheck(g, {x});
      EXPECT_TRUE(result.ok) << "Mean axis " << axis << ": " << result.message;
    }
  }
}

TEST(ShapeGradTest, ReshapeTransposeConcatSlice) {
  Rng rng(41);
  Variable a(Tensor::RandNormal({2, 6}, &rng), true);
  Variable b(Tensor::RandNormal({2, 6}, &rng), true);
  Tensor w = Tensor::RandNormal({4, 6}, &rng);
  auto f = [&](const std::vector<Variable>& in) {
    Variable t = TransposeLast2(Reshape(in[0], {3, 4}));  // [4,3]
    Variable t2 = Reshape(t, {2, 6});
    Variable cat = Concat({t2, in[1]}, 0);  // [4,6]
    Variable sl = Slice(cat, 1, 1, 4);      // [4,4]
    return WeightedSum(sl, ops::Slice(w, 1, 1, 4));
  };
  auto result = GradCheck(f, {a, b});
  EXPECT_TRUE(result.ok) << result.message;
}

TEST(NormGradTest, LayerNormAllInputs) {
  Rng rng(43);
  Variable x(Tensor::RandNormal({4, 6}, &rng), true);
  Variable gamma(Tensor::RandUniform({6}, &rng, 0.5f, 1.5f), true);
  Variable beta(Tensor::RandNormal({6}, &rng), true);
  Tensor w = Tensor::RandNormal({4, 6}, &rng);
  auto f = [&](const std::vector<Variable>& in) {
    return WeightedSum(LayerNorm(in[0], in[1], in[2]), w);
  };
  auto result = GradCheck(f, {x, gamma, beta});
  EXPECT_TRUE(result.ok) << result.message;
}

TEST(NormGradTest, BatchNormTrainingAllInputs) {
  Rng rng(47);
  Variable x(Tensor::RandNormal({8, 3}, &rng), true);
  Variable gamma(Tensor::RandUniform({3}, &rng, 0.5f, 1.5f), true);
  Variable beta(Tensor::RandNormal({3}, &rng), true);
  Tensor w = Tensor::RandNormal({8, 3}, &rng);
  auto f = [&](const std::vector<Variable>& in) {
    Tensor rm = Tensor::Zeros({3});
    Tensor rv = Tensor::Ones({3});
    return WeightedSum(BatchNorm(in[0], in[1], in[2], &rm, &rv, true), w);
  };
  auto result = GradCheck(f, {x, gamma, beta});
  EXPECT_TRUE(result.ok) << result.message;
}

TEST(ConvGradTest, UnfoldAndFold) {
  Rng rng(53);
  {
    Variable x(Tensor::RandNormal({2, 8, 3}, &rng), true);
    Tensor w = Tensor::RandNormal({2, 3, 12}, &rng);  // n_win=(8-4)/2+1=3
    auto f = [&](const std::vector<Variable>& in) {
      return WeightedSum(Unfold1d(in[0], 4, 2), w);
    };
    auto result = GradCheck(f, {x});
    EXPECT_TRUE(result.ok) << "Unfold: " << result.message;
  }
  {
    Variable x(Tensor::RandNormal({2, 3, 8}, &rng), true);  // n_win=3, w*C=8
    Tensor w = Tensor::RandNormal({2, 10, 2}, &rng);        // T=10, C=2, w=4, stride=3
    auto f = [&](const std::vector<Variable>& in) {
      return WeightedSum(Fold1d(in[0], 10, 2, 4, 3), w);
    };
    auto result = GradCheck(f, {x});
    EXPECT_TRUE(result.ok) << "Fold: " << result.message;
  }
}

TEST(LossGradTest, CrossEntropyLogits) {
  Rng rng(59);
  Variable logits(Tensor::RandNormal({5, 4}, &rng), true);
  const std::vector<int64_t> labels = {0, 3, 1, 2, 2};
  auto f = [&](const std::vector<Variable>& in) { return CrossEntropy(in[0], labels); };
  auto result = GradCheck(f, {logits});
  EXPECT_TRUE(result.ok) << result.message;
}

TEST(LossGradTest, MaskedMse) {
  Rng rng(61);
  Variable pred(Tensor::RandNormal({2, 4, 3}, &rng), true);
  Tensor target = Tensor::RandNormal({2, 4, 3}, &rng);
  Tensor mask(target.shape());
  for (int64_t i = 0; i < mask.numel(); ++i) mask.data()[i] = (i % 3 == 0) ? 1.0f : 0.0f;
  auto f = [&](const std::vector<Variable>& in) {
    return MaskedMse(in[0], target, mask);
  };
  auto result = GradCheck(f, {pred});
  EXPECT_TRUE(result.ok) << result.message;
}

TEST(CompositeGradTest, TwoLayerMlpEndToEnd) {
  Rng rng(67);
  Variable x(Tensor::RandNormal({4, 5}, &rng), true);
  Variable w1(Tensor::RandNormal({5, 8}, &rng, 0.0f, 0.5f), true);
  Variable b1(Tensor::Zeros({8}), true);
  Variable w2(Tensor::RandNormal({8, 3}, &rng, 0.0f, 0.5f), true);
  const std::vector<int64_t> labels = {0, 1, 2, 1};
  auto f = [&](const std::vector<Variable>& in) {
    Variable h = Gelu(Add(MatMul(in[0], in[1]), in[2]));
    Variable logits = MatMul(h, in[3]);
    return CrossEntropy(logits, labels);
  };
  auto result = GradCheck(f, {x, w1, b1, w2});
  EXPECT_TRUE(result.ok) << result.message;
}

}  // namespace
}  // namespace ag
}  // namespace rita
