// Unit tests for the raw tensor kernels: broadcasting, GEMM variants,
// reductions, softmax and shape surgery.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace rita {
namespace {

TEST(BroadcastTest, ShapeRules) {
  EXPECT_EQ(ops::BroadcastShape({2, 3}, {2, 3}), (Shape{2, 3}));
  EXPECT_EQ(ops::BroadcastShape({2, 3}, {3}), (Shape{2, 3}));
  EXPECT_EQ(ops::BroadcastShape({2, 1, 4}, {3, 1}), (Shape{2, 3, 4}));
  EXPECT_EQ(ops::BroadcastShape({1}, {5}), (Shape{5}));
}

TEST(BroadcastTest, BroadcastToMaterialises) {
  Tensor a = Tensor::FromVector({1, 3}, {1, 2, 3});
  Tensor b = ops::BroadcastTo(a, {2, 3});
  EXPECT_EQ(b.At({0, 1}), 2.0f);
  EXPECT_EQ(b.At({1, 2}), 3.0f);
}

TEST(BroadcastTest, ReduceToShapeSumsBroadcastDims) {
  Tensor g = Tensor::Ones({2, 3});
  Tensor r = ops::ReduceToShape(g, {3});
  EXPECT_EQ(r.shape(), (Shape{3}));
  EXPECT_EQ(r.data()[0], 2.0f);
  Tensor r2 = ops::ReduceToShape(g, {2, 1});
  EXPECT_EQ(r2.shape(), (Shape{2, 1}));
  EXPECT_EQ(r2.data()[0], 3.0f);
}

TEST(ElementwiseTest, AddSameShape) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2}, {10, 20, 30, 40});
  Tensor c = ops::Add(a, b);
  EXPECT_EQ(c.At({1, 1}), 44.0f);
}

TEST(ElementwiseTest, AddBiasSuffixBroadcast) {
  Tensor a = Tensor::Ones({2, 3, 4});
  Tensor bias = Tensor::FromVector({4}, {1, 2, 3, 4});
  Tensor c = ops::Add(a, bias);
  EXPECT_EQ(c.At({1, 2, 3}), 5.0f);
  EXPECT_EQ(c.At({0, 0, 0}), 2.0f);
}

TEST(ElementwiseTest, GeneralOdometerBroadcast) {
  // [2,1,2] * [1,3,1] -> [2,3,2]
  Tensor a = Tensor::FromVector({2, 1, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({1, 3, 1}, {10, 100, 1000});
  Tensor c = ops::Mul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 3, 2}));
  EXPECT_EQ(c.At({0, 0, 0}), 10.0f);
  EXPECT_EQ(c.At({0, 1, 1}), 200.0f);
  EXPECT_EQ(c.At({1, 2, 0}), 3000.0f);
}

TEST(ElementwiseTest, ScalarOperandFastPaths) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  Tensor s = Tensor::Scalar(2.0f);
  EXPECT_EQ(ops::Mul(a, s).At({2}), 6.0f);
  EXPECT_EQ(ops::Mul(s, a).At({2}), 6.0f);
  EXPECT_EQ(ops::Sub(s, a).At({0}), 1.0f);
}

TEST(ElementwiseTest, DivAndUnaryOps) {
  Tensor a = Tensor::FromVector({4}, {1, 4, 9, 16});
  EXPECT_FLOAT_EQ(ops::Div(a, Tensor::Scalar(2.0f)).At({1}), 2.0f);
  EXPECT_FLOAT_EQ(ops::Sqrt(a).At({2}), 3.0f);
  EXPECT_FLOAT_EQ(ops::Square(a).At({1}), 16.0f);
  EXPECT_FLOAT_EQ(ops::Neg(a).At({0}), -1.0f);
  EXPECT_FLOAT_EQ(ops::Exp(Tensor::Zeros({1})).Item(), 1.0f);
  EXPECT_FLOAT_EQ(ops::Log(Tensor::Ones({1})).Item(), 0.0f);
  EXPECT_FLOAT_EQ(ops::Abs(Tensor::Scalar(-2.0f)).Item(), 2.0f);
}

TEST(ElementwiseTest, ActivationValues) {
  Tensor x = Tensor::FromVector({3}, {-1.0f, 0.0f, 1.0f});
  Tensor r = ops::Relu(x);
  EXPECT_EQ(r.data()[0], 0.0f);
  EXPECT_EQ(r.data()[2], 1.0f);
  Tensor s = ops::Sigmoid(Tensor::Zeros({1}));
  EXPECT_FLOAT_EQ(s.Item(), 0.5f);
  Tensor t = ops::Tanh(Tensor::Zeros({1}));
  EXPECT_FLOAT_EQ(t.Item(), 0.0f);
  // GELU(0) = 0, GELU(x) ~ x for large x, ~0 for very negative x.
  Tensor g = ops::Gelu(Tensor::FromVector({3}, {-10.0f, 0.0f, 10.0f}));
  EXPECT_NEAR(g.data()[0], 0.0f, 1e-4f);
  EXPECT_NEAR(g.data()[1], 0.0f, 1e-6f);
  EXPECT_NEAR(g.data()[2], 10.0f, 1e-3f);
}

TEST(InPlaceTest, AxpyScaleAdd) {
  Tensor y = Tensor::FromVector({3}, {1, 1, 1});
  Tensor x = Tensor::FromVector({3}, {1, 2, 3});
  ops::AxpyInPlace(&y, x, 2.0f);
  EXPECT_EQ(y.data()[2], 7.0f);
  ops::ScaleInPlace(&y, 0.5f);
  EXPECT_EQ(y.data()[2], 3.5f);
  ops::AddInPlace(&y, x);
  EXPECT_EQ(y.data()[2], 6.5f);
}

// -- GEMM -------------------------------------------------------------------

Tensor NaiveMatMul(const Tensor& a, const Tensor& b, bool ta, bool tb) {
  const int64_t m = ta ? a.size(1) : a.size(0);
  const int64_t k = ta ? a.size(0) : a.size(1);
  const int64_t n = tb ? b.size(0) : b.size(1);
  Tensor c({m, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float s = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float av = ta ? a.At({kk, i}) : a.At({i, kk});
        const float bv = tb ? b.At({j, kk}) : b.At({kk, j});
        s += av * bv;
      }
      c.At({i, j}) = s;
    }
  }
  return c;
}

class GemmVariantTest : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(GemmVariantTest, MatchesNaive) {
  const auto [ta, tb] = GetParam();
  Rng rng(99);
  const int64_t m = 17, k = 23, n = 13;
  Tensor a = Tensor::RandNormal(ta ? Shape{k, m} : Shape{m, k}, &rng);
  Tensor b = Tensor::RandNormal(tb ? Shape{n, k} : Shape{k, n}, &rng);
  Tensor c = ops::MatMul(a, b, ta, tb);
  Tensor ref = NaiveMatMul(a, b, ta, tb);
  EXPECT_TRUE(c.AllClose(ref, 1e-4f, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(AllTransposeCombos, GemmVariantTest,
                         ::testing::Combine(::testing::Bool(), ::testing::Bool()));

TEST(GemmTest, LargeParallelMatchesNaive) {
  Rng rng(1);
  Tensor a = Tensor::RandNormal({200, 64}, &rng);
  Tensor b = Tensor::RandNormal({64, 150}, &rng);
  Tensor c = ops::MatMul(a, b);
  Tensor ref = NaiveMatMul(a, b, false, false);
  EXPECT_TRUE(c.AllClose(ref, 1e-3f, 1e-3f));
}

TEST(BmmTest, BatchedMatchesPerBatch) {
  Rng rng(5);
  Tensor a = Tensor::RandNormal({4, 6, 5}, &rng);
  Tensor b = Tensor::RandNormal({4, 5, 7}, &rng);
  Tensor c = ops::Bmm(a, b);
  EXPECT_EQ(c.shape(), (Shape{4, 6, 7}));
  for (int64_t bi = 0; bi < 4; ++bi) {
    Tensor asl = ops::Slice(a, 0, bi, 1).Reshape({6, 5});
    Tensor bsl = ops::Slice(b, 0, bi, 1).Reshape({5, 7});
    Tensor csl = ops::Slice(c, 0, bi, 1).Reshape({6, 7});
    EXPECT_TRUE(csl.AllClose(ops::MatMul(asl, bsl), 1e-4f, 1e-4f));
  }
}

TEST(BmmTest, SharedBMatrix) {
  Rng rng(6);
  Tensor a = Tensor::RandNormal({3, 4, 5}, &rng);
  Tensor b = Tensor::RandNormal({5, 2}, &rng);
  Tensor c = ops::Bmm(a, b);
  for (int64_t bi = 0; bi < 3; ++bi) {
    Tensor asl = ops::Slice(a, 0, bi, 1).Reshape({4, 5});
    Tensor csl = ops::Slice(c, 0, bi, 1).Reshape({4, 2});
    EXPECT_TRUE(csl.AllClose(ops::MatMul(asl, b), 1e-4f, 1e-4f));
  }
}

TEST(BmmTest, TransBAttentionPattern) {
  Rng rng(7);
  Tensor q = Tensor::RandNormal({2, 8, 4}, &rng);
  Tensor k = Tensor::RandNormal({2, 8, 4}, &rng);
  Tensor scores = ops::Bmm(q, k, false, true);
  EXPECT_EQ(scores.shape(), (Shape{2, 8, 8}));
  // scores[b,i,j] = q[b,i,:] . k[b,j,:]
  float expect = 0.0f;
  for (int64_t d = 0; d < 4; ++d) expect += q.At({1, 2, d}) * k.At({1, 5, d});
  EXPECT_NEAR(scores.At({1, 2, 5}), expect, 1e-4f);
}

// -- Reductions ----------------------------------------------------------------

TEST(ReduceTest, SumAll) {
  Tensor a = Tensor::Arange(5);
  EXPECT_FLOAT_EQ(ops::SumAll(a).Item(), 10.0f);
}

TEST(ReduceTest, SumAxisKeepdim) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s0 = ops::Sum(a, 0, true);
  EXPECT_EQ(s0.shape(), (Shape{1, 3}));
  EXPECT_EQ(s0.data()[0], 5.0f);
  Tensor s1 = ops::Sum(a, 1, false);
  EXPECT_EQ(s1.shape(), (Shape{2}));
  EXPECT_EQ(s1.data()[1], 15.0f);
  Tensor sneg = ops::Sum(a, -1, false);
  EXPECT_TRUE(sneg.AllClose(s1));
}

TEST(ReduceTest, MeanAxis) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 3, 5, 7});
  Tensor m = ops::Mean(a, 0, false);
  EXPECT_EQ(m.data()[0], 3.0f);
  EXPECT_EQ(m.data()[1], 5.0f);
}

TEST(ReduceTest, MaxAndArgMaxLastDim) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 9, 2, 8, 3, 4});
  Tensor mx = ops::MaxLastDim(a);
  EXPECT_EQ(mx.shape(), (Shape{2, 1}));
  EXPECT_EQ(mx.data()[0], 9.0f);
  EXPECT_EQ(mx.data()[1], 8.0f);
  Tensor am = ops::ArgMaxLastDim(a);
  EXPECT_EQ(am.data()[0], 1.0f);
  EXPECT_EQ(am.data()[1], 0.0f);
}

TEST(SoftmaxTest, RowsSumToOneAndOrderPreserved) {
  Rng rng(3);
  Tensor a = Tensor::RandNormal({8, 16}, &rng, 0.0f, 3.0f);
  Tensor s = ops::SoftmaxLastDim(a);
  for (int64_t r = 0; r < 8; ++r) {
    float sum = 0.0f;
    for (int64_t j = 0; j < 16; ++j) sum += s.At({r, j});
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(SoftmaxTest, StableUnderLargeInputs) {
  Tensor a = Tensor::FromVector({1, 3}, {1000.0f, 1000.0f, 1000.0f});
  Tensor s = ops::SoftmaxLastDim(a);
  for (int64_t j = 0; j < 3; ++j) EXPECT_NEAR(s.data()[j], 1.0f / 3.0f, 1e-6f);
}

// -- Shape surgery ---------------------------------------------------------------

TEST(ShapeOpsTest, TransposeLast2) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = ops::TransposeLast2(a);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_EQ(t.At({0, 1}), 4.0f);
  EXPECT_EQ(t.At({2, 0}), 3.0f);
}

TEST(ShapeOpsTest, TransposeLast2Batched) {
  Rng rng(8);
  Tensor a = Tensor::RandNormal({3, 4, 5}, &rng);
  Tensor t = ops::TransposeLast2(a);
  EXPECT_EQ(t.shape(), (Shape{3, 5, 4}));
  EXPECT_EQ(t.At({2, 3, 1}), a.At({2, 1, 3}));
}

TEST(ShapeOpsTest, ConcatAxis0And1) {
  Tensor a = Tensor::FromVector({1, 2}, {1, 2});
  Tensor b = Tensor::FromVector({1, 2}, {3, 4});
  Tensor c0 = ops::Concat({a, b}, 0);
  EXPECT_EQ(c0.shape(), (Shape{2, 2}));
  EXPECT_EQ(c0.At({1, 0}), 3.0f);
  Tensor c1 = ops::Concat({a, b}, 1);
  EXPECT_EQ(c1.shape(), (Shape{1, 4}));
  EXPECT_EQ(c1.At({0, 3}), 4.0f);
}

TEST(ShapeOpsTest, SliceMiddleAxis) {
  Tensor a = Tensor::Arange(24).Reshape({2, 3, 4});
  Tensor s = ops::Slice(a, 1, 1, 2);
  EXPECT_EQ(s.shape(), (Shape{2, 2, 4}));
  EXPECT_EQ(s.At({0, 0, 0}), a.At({0, 1, 0}));
  EXPECT_EQ(s.At({1, 1, 3}), a.At({1, 2, 3}));
}

TEST(ShapeOpsTest, SliceRejectsBadArguments) {
  Tensor a = Tensor::Arange(24).Reshape({2, 3, 4});
  EXPECT_DEATH(ops::Slice(a, 3, 0, 1), "axis out of range");
  EXPECT_DEATH(ops::Slice(a, -4, 0, 1), "axis out of range");
  EXPECT_DEATH(ops::Slice(a, 1, 0, -1), "negative length");
  EXPECT_DEATH(ops::Slice(a, 1, -1, 2), "negative start");
  EXPECT_DEATH(ops::Slice(a, 1, 2, 2), "exceeds axis");
}

TEST(ShapeOpsTest, ConcatRejectsBadArguments) {
  Tensor a = Tensor::FromVector({1, 2}, {1, 2});
  Tensor b = Tensor::FromVector({1, 2}, {3, 4});
  EXPECT_DEATH(ops::Concat({}, 0), "empty part list");
  EXPECT_DEATH(ops::Concat({a, b}, 2), "axis out of range");
  EXPECT_DEATH(ops::Concat({a, b}, -3), "axis out of range");
  Tensor c = Tensor::FromVector({1, 3}, {1, 2, 3});
  EXPECT_DEATH(ops::Concat({a, c}, 0), "mismatch");
  Tensor d = Tensor::FromVector({2}, {1, 2});
  EXPECT_DEATH(ops::Concat({a, d}, 0), "rank mismatch");
}

TEST(ShapeOpsTest, GatherScatterRowsRoundTrip) {
  Tensor a = Tensor::Arange(12).Reshape({4, 3});
  Tensor g = ops::GatherRows(a, {2, 0, 2});
  EXPECT_EQ(g.shape(), (Shape{3, 3}));
  EXPECT_EQ(g.At({0, 0}), 6.0f);
  EXPECT_EQ(g.At({1, 1}), 1.0f);

  Tensor acc = Tensor::Zeros({4, 3});
  ops::ScatterAddRows(g, {2, 0, 2}, &acc);
  EXPECT_EQ(acc.At({0, 0}), 0.0f);
  EXPECT_EQ(acc.At({2, 0}), 12.0f);  // row 2 scattered twice
}

}  // namespace
}  // namespace rita
