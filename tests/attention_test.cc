// Tests for the baseline attention mechanisms and the multi-head wrapper.
#include <gtest/gtest.h>

#include <cmath>

#include "attention/multi_head.h"
#include "autograd/gradcheck.h"
#include "core/attention_factory.h"
#include "tensor/tensor_ops.h"

namespace rita {
namespace attn {
namespace {

TEST(PermuteTest, HeadSplitRoundTrip) {
  Rng rng(1);
  Tensor x = Tensor::RandNormal({2, 5, 3, 4}, &rng);
  Tensor p = ops::Permute(x, {0, 2, 1, 3});
  EXPECT_EQ(p.shape(), (Shape{2, 3, 5, 4}));
  EXPECT_EQ(p.At({1, 2, 3, 0}), x.At({1, 3, 2, 0}));
  Tensor back = ops::Permute(p, {0, 2, 1, 3});
  EXPECT_TRUE(back.AllClose(x));
}

TEST(PermuteTest, GradientIsInversePermutation) {
  Rng rng(2);
  ag::Variable x(Tensor::RandNormal({2, 3, 4}, &rng), true);
  Tensor w = Tensor::RandNormal({4, 3, 2}, &rng);
  auto f = [&](const std::vector<ag::Variable>& in) {
    return ag::SumAll(ag::Mul(ag::Permute(in[0], {2, 1, 0}), ag::Variable(w)));
  };
  auto result = ag::GradCheck(f, {x});
  EXPECT_TRUE(result.ok) << result.message;
}

TEST(VanillaAttentionTest, UniformKeysGiveMeanPooling) {
  // With identical keys, attention weights are uniform: output = mean(V).
  Rng rng(3);
  VanillaAttention mech(4, 0.0f, &rng);
  mech.SetTraining(false);
  Tensor k = Tensor::Ones({1, 6, 4});
  Tensor q = Tensor::RandNormal({1, 6, 4}, &rng);
  Tensor v = Tensor::RandNormal({1, 6, 4}, &rng);
  Tensor o = mech.Forward(ag::Variable(q), ag::Variable(k), ag::Variable(v)).data();
  Tensor mean_v = ops::Mean(v, 1, true);
  for (int64_t i = 0; i < 6; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(o.At({0, i, j}), mean_v.At({0, 0, j}), 1e-5f);
    }
  }
}

TEST(VanillaAttentionTest, PeakedQueryAttendsToMatchingKey) {
  Rng rng(4);
  VanillaAttention mech(4, 0.0f, &rng);
  mech.SetTraining(false);
  // Orthogonal one-hot keys scaled up: query = key 2 selects value row 2.
  Tensor k = Tensor::Zeros({1, 4, 4});
  for (int64_t i = 0; i < 4; ++i) k.At({0, i, i}) = 20.0f;
  Tensor q = Tensor::Zeros({1, 1, 4});
  q.At({0, 0, 2}) = 20.0f;
  Tensor v = Tensor::RandNormal({1, 4, 4}, &rng);
  // Broadcast-free: use 1-query attention.
  Tensor o = mech.Forward(ag::Variable(q), ag::Variable(k), ag::Variable(v)).data();
  for (int64_t j = 0; j < 4; ++j) EXPECT_NEAR(o.At({0, 0, j}), v.At({0, 2, j}), 1e-3f);
}

TEST(PerformerAttentionTest, ApproximatesVanillaOnSmallInputs) {
  Rng rng(5);
  const int64_t d = 8;
  PerformerAttention perf(d, /*num_features=*/512, &rng);
  perf.SetTraining(false);
  Rng r2(0);
  VanillaAttention vanilla(d, 0.0f, &r2);
  vanilla.SetTraining(false);

  Tensor q = Tensor::RandNormal({1, 10, d}, &rng, 0.0f, 0.5f);
  Tensor k = Tensor::RandNormal({1, 10, d}, &rng, 0.0f, 0.5f);
  Tensor v = Tensor::RandNormal({1, 10, d}, &rng);
  Tensor approx = perf.Forward(ag::Variable(q), ag::Variable(k), ag::Variable(v)).data();
  Tensor exact = vanilla.Forward(ag::Variable(q), ag::Variable(k), ag::Variable(v)).data();
  // Monte-Carlo feature approximation: loose elementwise tolerance.
  float max_err = 0.0f;
  for (int64_t i = 0; i < approx.numel(); ++i) {
    max_err = std::max(max_err, std::fabs(approx.data()[i] - exact.data()[i]));
  }
  EXPECT_LT(max_err, 0.25f);
}

TEST(PerformerAttentionTest, RedrawChangesFeaturesButKeepsShape) {
  Rng rng(6);
  PerformerAttention perf(4, 16, &rng);
  Tensor q = Tensor::RandNormal({2, 5, 4}, &rng);
  Tensor o1 = perf.Forward(ag::Variable(q), ag::Variable(q), ag::Variable(q)).data();
  perf.RedrawFeatures();
  Tensor o2 = perf.Forward(ag::Variable(q), ag::Variable(q), ag::Variable(q)).data();
  EXPECT_EQ(o1.shape(), o2.shape());
  EXPECT_FALSE(o1.AllClose(o2, 1e-6f, 1e-7f));  // different random features
}

TEST(PerformerAttentionTest, GradientsFlowToAllInputs) {
  Rng rng(7);
  PerformerAttention perf(4, 8, &rng);
  ag::Variable q(Tensor::RandNormal({1, 5, 4}, &rng), true);
  ag::Variable k(Tensor::RandNormal({1, 5, 4}, &rng), true);
  ag::Variable v(Tensor::RandNormal({1, 5, 4}, &rng), true);
  ag::SumAll(perf.Forward(q, k, v)).Backward();
  EXPECT_TRUE(q.has_grad());
  EXPECT_TRUE(k.has_grad());
  EXPECT_TRUE(v.has_grad());
}

TEST(LinformerAttentionTest, ShapeAndProjectionDim) {
  Rng rng(8);
  LinformerAttention lin(4, /*seq_len=*/20, /*proj_dim=*/6, &rng);
  EXPECT_EQ(lin.ScoreMatrixElements(20), 20 * 6);
  Tensor q = Tensor::RandNormal({2, 20, 4}, &rng);
  Tensor o = lin.Forward(ag::Variable(q), ag::Variable(q), ag::Variable(q)).data();
  EXPECT_EQ(o.shape(), (Shape{2, 20, 4}));
}

TEST(LinformerAttentionTest, HasLearnableProjections) {
  Rng rng(9);
  LinformerAttention lin(4, 20, 6, &rng);
  auto named = lin.NamedParameters();
  EXPECT_EQ(named.size(), 2u);  // E and F
  EXPECT_EQ(lin.NumParameters(), 2 * 6 * 20);
}

TEST(LinformerAttentionTest, GradCheckThroughProjection) {
  Rng rng(10);
  LinformerAttention lin(3, 6, 2, &rng);
  ag::Variable q(Tensor::RandNormal({1, 6, 3}, &rng), true);
  ag::Variable k(Tensor::RandNormal({1, 6, 3}, &rng), true);
  ag::Variable v(Tensor::RandNormal({1, 6, 3}, &rng), true);
  Tensor w = Tensor::RandNormal({1, 6, 3}, &rng);
  auto f = [&](const std::vector<ag::Variable>& in) {
    return ag::SumAll(ag::Mul(lin.Forward(in[0], in[1], in[2]), ag::Variable(w)));
  };
  auto result = ag::GradCheck(f, {q, k, v});
  EXPECT_TRUE(result.ok) << result.message;
}

class MultiHeadKindTest : public ::testing::TestWithParam<AttentionKind> {};

TEST_P(MultiHeadKindTest, ForwardBackwardShapes) {
  Rng rng(11);
  core::AttentionOptions opts;
  opts.kind = GetParam();
  opts.dropout = 0.0f;
  opts.group.num_groups = 4;
  opts.performer_features = 8;
  opts.linformer_k = 4;
  opts.seq_len = 12;
  const int64_t dim = 16, heads = 2;
  auto mech = core::CreateAttentionMechanism(dim / heads, opts, &rng);
  MultiHeadAttention mha(dim, heads, std::move(mech), &rng);

  ag::Variable x(Tensor::RandNormal({3, 12, dim}, &rng), true);
  ag::Variable y = mha.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{3, 12, dim}));
  ag::SumAll(y).Backward();
  EXPECT_TRUE(x.has_grad());
  // Projection weights receive gradients too.
  for (auto& [name, p] : mha.NamedParameters()) {
    EXPECT_TRUE(p.has_grad()) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, MultiHeadKindTest,
                         ::testing::Values(AttentionKind::kVanilla,
                                           AttentionKind::kGroup,
                                           AttentionKind::kPerformer,
                                           AttentionKind::kLinformer),
                         [](const ::testing::TestParamInfo<AttentionKind>& info) {
                           return AttentionKindName(info.param);
                         });

TEST(MultiHeadTest, HeadCountMustDivideDim) {
  Rng rng(12);
  core::AttentionOptions opts;
  opts.kind = AttentionKind::kVanilla;
  auto mech = core::CreateAttentionMechanism(5, opts, &rng);
  EXPECT_DEATH(MultiHeadAttention(16, 3, std::move(mech), &rng), "divisible");
}

TEST(FactoryTest, KindNamesAndCreation) {
  EXPECT_STREQ(AttentionKindName(AttentionKind::kGroup), "GroupAttn");
  Rng rng(13);
  core::AttentionOptions opts;
  opts.kind = AttentionKind::kGroup;
  auto mech = core::CreateAttentionMechanism(8, opts, &rng);
  EXPECT_EQ(mech->kind(), AttentionKind::kGroup);
}

}  // namespace
}  // namespace attn
}  // namespace rita
