// Tests for rita::stream — windowed streaming inference over unbounded
// series. The acceptance contract: a session's stitched output is a pure
// function of the ingested samples (bit-identical across ingestion chunk
// sizes), overlap-average reconstruction matches an offline sliding-window
// reference, and 8 concurrent sessions on one engine reproduce their
// single-session outputs (run under RITA_SANITIZE=thread in CI). Also covers
// the WindowAssembler, typed backpressure rejects, tail flushing, EWMA
// scores and the deadline-miss / compute-telemetry satellites.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "serve/inference_engine.h"
#include "stream/stream_manager.h"
#include "util/execution_context.h"
#include "util/thread_pool.h"

namespace rita {
namespace stream {
namespace {

model::RitaConfig SmallConfig() {
  model::RitaConfig config;
  config.input_channels = 2;
  config.input_length = 60;
  config.window = 5;
  config.stride = 5;
  config.num_classes = 4;
  config.encoder.dim = 16;
  config.encoder.num_layers = 2;
  config.encoder.num_heads = 2;
  config.encoder.ffn_hidden = 32;
  config.encoder.attention.kind = attn::AttentionKind::kGroup;
  config.encoder.attention.group.num_groups = 4;
  return config;
}

Tensor MakeSeries(int64_t n, int64_t c, uint64_t seed) {
  Rng rng(seed);
  return Tensor::RandNormal({n, c}, &rng);
}

bool BitEqual(const Tensor& a, const Tensor& b) {
  return a.defined() == b.defined() &&
         (!a.defined() ||
          (a.shape() == b.shape() &&
           std::memcmp(a.data(), b.data(), sizeof(float) * a.numel()) == 0));
}

Tensor SliceRows(const Tensor& series, int64_t start, int64_t len) {
  const int64_t c = series.size(1);
  Tensor out({len, c});
  std::copy(series.data() + start * c, series.data() + (start + len) * c,
            out.data());
  return out;
}

/// Shared fixture: one frozen model + engine + manager.
struct Rig {
  explicit Rig(int64_t cache_bytes = 32 << 20, int num_workers = 2) {
    model::RitaConfig config = SmallConfig();
    Rng rng(42);
    source = std::make_unique<model::RitaModel>(config, &rng);
    frozen = std::make_unique<serve::FrozenModel>(*source);
    serve::InferenceEngineOptions options;
    options.num_workers = num_workers;
    options.cache_bytes = cache_bytes;
    engine = std::make_unique<serve::InferenceEngine>(frozen.get(), options);
    manager = std::make_unique<StreamManager>(engine.get());
  }

  std::unique_ptr<model::RitaModel> source;
  std::unique_ptr<serve::FrozenModel> frozen;
  std::unique_ptr<serve::InferenceEngine> engine;
  std::unique_ptr<StreamManager> manager;
};

/// Feeds `series` through a fresh session in `chunk`-sized appends, closes
/// it, and returns (results, timeline).
struct StreamRun {
  std::vector<StreamWindowResult> results;
  Tensor timeline;
  int64_t timeline_start = 0;
  StreamStats stats;
};

StreamRun FeedSeries(StreamManager* manager, const StreamOptions& options,
                     const Tensor& series, int64_t chunk) {
  Result<int64_t> opened = manager->Open(options);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  const int64_t id = opened.ValueOrDie();
  const int64_t n = series.size(0);
  for (int64_t at = 0; at < n; at += chunk) {
    const int64_t len = std::min(chunk, n - at);
    Status appended = manager->Append(id, SliceRows(series, at, len));
    EXPECT_TRUE(appended.ok()) << appended.ToString();
  }
  EXPECT_TRUE(manager->Close(id).ok());
  StreamRun run;
  StreamSession* session = manager->Find(id);
  run.results = session->TakeResults();
  run.timeline = session->TakeTimeline(&run.timeline_start);
  run.stats = session->stats();
  EXPECT_TRUE(manager->Release(id).ok());
  return run;
}

// ---------------------------------------------------------------------------
// WindowAssembler
// ---------------------------------------------------------------------------

TEST(WindowAssemblerTest, HopAlignedWindowsAndRaggedTail) {
  WindowAssembler::Options options;
  options.channels = 2;
  options.window_length = 10;
  options.hop = 4;
  WindowAssembler assembler(options);

  const Tensor series = MakeSeries(27, 2, 1);
  // Ragged chunks: 5 + 1 + 13 + 8 = 27 samples.
  ASSERT_TRUE(assembler.Append(SliceRows(series, 0, 5)).ok());
  ASSERT_TRUE(assembler.Append(SliceRows(series, 5, 1)).ok());
  ASSERT_TRUE(assembler.Append(SliceRows(series, 6, 13)).ok());
  ASSERT_TRUE(assembler.Append(SliceRows(series, 19, 8)).ok());

  // Windows start at 0, 4, 8, 12, 16 (start + 10 <= 27); tail is [20, 27).
  std::vector<int64_t> starts;
  while (assembler.HasWindow()) {
    int64_t start = 0;
    Tensor window = assembler.PopWindow(&start);
    EXPECT_TRUE(BitEqual(window, SliceRows(series, start, 10)));
    starts.push_back(start);
  }
  EXPECT_EQ(starts, (std::vector<int64_t>{0, 4, 8, 12, 16}));
  EXPECT_EQ(assembler.TailLength(), 7);
  int64_t tail_start = 0;
  Tensor tail = assembler.TakeTail(&tail_start);
  EXPECT_EQ(tail_start, 20);
  EXPECT_TRUE(BitEqual(tail, SliceRows(series, 20, 7)));
  EXPECT_EQ(assembler.total_ingested(), 27);
  EXPECT_EQ(assembler.buffered(), 0);
}

TEST(WindowAssemblerTest, BufferBudgetTypedReject) {
  WindowAssembler::Options options;
  options.channels = 1;
  options.window_length = 8;
  options.hop = 8;
  options.max_buffered = 12;
  WindowAssembler assembler(options);

  ASSERT_TRUE(assembler.Append(Tensor::Zeros({10})).ok());
  // 10 buffered + 5 > 12: refused whole, nothing ingested.
  Status rejected = assembler.Append(Tensor::Zeros({5}));
  EXPECT_EQ(rejected.code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(assembler.buffered(), 10);
  EXPECT_EQ(assembler.total_ingested(), 10);
  // Draining a window frees budget.
  ASSERT_TRUE(assembler.HasWindow());
  assembler.PopWindow(nullptr);
  EXPECT_TRUE(assembler.Append(Tensor::Zeros({5})).ok());
}

TEST(WindowAssemblerTest, EmittedWindowsInvariantToChunking) {
  const Tensor series = MakeSeries(41, 3, 2);
  std::vector<std::vector<Tensor>> per_chunking;
  for (int64_t chunk : {1, 3, 41}) {
    WindowAssembler::Options options;
    options.channels = 3;
    options.window_length = 12;
    options.hop = 5;
    WindowAssembler assembler(options);
    std::vector<Tensor> windows;
    for (int64_t at = 0; at < 41; at += chunk) {
      ASSERT_TRUE(
          assembler.Append(SliceRows(series, at, std::min(chunk, 41 - at))).ok());
      while (assembler.HasWindow()) windows.push_back(assembler.PopWindow(nullptr));
    }
    per_chunking.push_back(std::move(windows));
  }
  ASSERT_EQ(per_chunking[0].size(), per_chunking[1].size());
  ASSERT_EQ(per_chunking[0].size(), per_chunking[2].size());
  for (size_t i = 0; i < per_chunking[0].size(); ++i) {
    EXPECT_TRUE(BitEqual(per_chunking[0][i], per_chunking[1][i]));
    EXPECT_TRUE(BitEqual(per_chunking[0][i], per_chunking[2][i]));
  }
}

// ---------------------------------------------------------------------------
// StreamSession determinism (the acceptance contract)
// ---------------------------------------------------------------------------

// Feeding one long series in chunk sizes {1, 7, window} yields bit-identical
// stitched reconstruction and identical window scores.
TEST(StreamSessionTest, ReconstructBitIdenticalAcrossChunkSizes) {
  Rig rig;
  StreamOptions options;
  options.task = StreamTask::kReconstruct;
  options.window_length = 60;
  options.hop = 30;
  options.carry_context = true;
  const Tensor series = MakeSeries(150, 2, 3);

  const StreamRun a = FeedSeries(rig.manager.get(), options, series, 1);
  const StreamRun b = FeedSeries(rig.manager.get(), options, series, 7);
  const StreamRun c = FeedSeries(rig.manager.get(), options, series, 60);

  // 4 full windows (starts 0/30/60/90) + the flushed tail (start 120).
  ASSERT_EQ(a.results.size(), 5u);
  ASSERT_TRUE(a.timeline.defined());
  EXPECT_EQ(a.timeline.size(0), 150);
  EXPECT_EQ(a.timeline_start, 0);
  EXPECT_TRUE(BitEqual(a.timeline, b.timeline));
  EXPECT_TRUE(BitEqual(a.timeline, c.timeline));
  ASSERT_EQ(b.results.size(), 5u);
  ASSERT_EQ(c.results.size(), 5u);
  for (size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].start, b.results[i].start);
    EXPECT_EQ(a.results[i].valid_length, c.results[i].valid_length);
  }
  EXPECT_EQ(a.results.back().valid_length, 30);  // ragged tail
}

TEST(StreamSessionTest, ClassifyBitIdenticalAcrossChunkSizes) {
  Rig rig;
  StreamOptions options;
  options.task = StreamTask::kClassify;
  options.window_length = 60;
  options.hop = 30;
  options.carry_context = true;
  const Tensor series = MakeSeries(150, 2, 4);

  const StreamRun a = FeedSeries(rig.manager.get(), options, series, 1);
  const StreamRun b = FeedSeries(rig.manager.get(), options, series, 7);
  const StreamRun c = FeedSeries(rig.manager.get(), options, series, 60);
  ASSERT_EQ(a.results.size(), 5u);
  ASSERT_EQ(b.results.size(), 5u);
  ASSERT_EQ(c.results.size(), 5u);
  for (size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_TRUE(BitEqual(a.results[i].logits, b.results[i].logits)) << i;
    EXPECT_TRUE(BitEqual(a.results[i].logits, c.results[i].logits)) << i;
    EXPECT_EQ(a.results[i].raw_score, b.results[i].raw_score) << i;
    EXPECT_EQ(a.results[i].score, c.results[i].score) << i;
  }
}

// Overlap-average stitching matches an offline sliding-window reference
// computed directly on the FrozenModel (context carry off so every window is
// independently reproducible one-shot).
TEST(StreamSessionTest, OverlapAverageMatchesOfflineReference) {
  Rig rig;
  StreamOptions options;
  options.task = StreamTask::kReconstruct;
  options.window_length = 60;
  options.hop = 20;
  options.carry_context = false;
  const int64_t n = 140, c = 2, w = 60, hop = 20;
  const Tensor series = MakeSeries(n, c, 5);

  const StreamRun run = FeedSeries(rig.manager.get(), options, series, 11);
  ASSERT_TRUE(run.timeline.defined());
  ASSERT_EQ(run.timeline.size(0), n);

  // Offline reference: the same hop-aligned windows (incl. the edge-padded
  // tail), each reconstructed one-shot, averaged per position in the same
  // window order and arithmetic (double sums).
  std::vector<double> sum(static_cast<size_t>(n * c), 0.0);
  std::vector<int32_t> count(static_cast<size_t>(n), 0);
  auto accumulate = [&](const Tensor& window, int64_t start, int64_t valid) {
    Tensor recon = rig.frozen->Reconstruct(window.Reshape({1, w, c}));
    for (int64_t row = 0; row < valid; ++row) {
      for (int64_t ch = 0; ch < c; ++ch) {
        sum[(start + row) * c + ch] += recon.data()[row * c + ch];
      }
      ++count[start + row];
    }
  };
  int64_t start = 0;
  for (; start + w <= n; start += hop) {
    accumulate(SliceRows(series, start, w), start, w);
  }
  const int64_t tail = n - start;
  ASSERT_GT(tail, 0);
  Tensor padded({w, c});
  std::copy(series.data() + start * c, series.data() + n * c, padded.data());
  for (int64_t row = tail; row < w; ++row) {
    std::copy(series.data() + (n - 1) * c, series.data() + n * c,
              padded.data() + row * c);
  }
  accumulate(padded, start, tail);

  Tensor want({n, c});
  for (int64_t row = 0; row < n; ++row) {
    for (int64_t ch = 0; ch < c; ++ch) {
      want.data()[row * c + ch] = static_cast<float>(
          sum[row * c + ch] / static_cast<double>(count[row]));
    }
  }
  EXPECT_TRUE(BitEqual(run.timeline, want))
      << "stitched timeline diverges from the offline sliding-window average";
}

// Carrying the previous window's [CLS] conditions later windows: window 0 is
// unchanged (no context yet), later windows differ — and the carried path is
// itself deterministic.
TEST(StreamSessionTest, ContextCarryConditionsLaterWindows) {
  Rig rig;
  StreamOptions carried;
  carried.task = StreamTask::kClassify;
  carried.window_length = 60;
  carried.hop = 60;
  carried.carry_context = true;
  StreamOptions independent = carried;
  independent.carry_context = false;
  const Tensor series = MakeSeries(180, 2, 6);  // 3 tumbling windows

  const StreamRun with = FeedSeries(rig.manager.get(), carried, series, 60);
  const StreamRun with2 = FeedSeries(rig.manager.get(), carried, series, 60);
  const StreamRun without = FeedSeries(rig.manager.get(), independent, series, 60);
  ASSERT_EQ(with.results.size(), 3u);
  ASSERT_EQ(without.results.size(), 3u);
  EXPECT_TRUE(BitEqual(with.results[0].logits, without.results[0].logits));
  EXPECT_FALSE(BitEqual(with.results[1].logits, without.results[1].logits))
      << "context token had no effect on the conditioned window";
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(BitEqual(with.results[i].logits, with2.results[i].logits));
  }
}

// A stream shorter than one window flushes as a single edge-padded window.
TEST(StreamSessionTest, ShortStreamFlushesPaddedTail) {
  Rig rig;
  StreamOptions options;
  options.task = StreamTask::kReconstruct;
  options.window_length = 60;
  options.hop = 60;
  const Tensor series = MakeSeries(23, 2, 7);

  const StreamRun run = FeedSeries(rig.manager.get(), options, series, 23);
  ASSERT_EQ(run.results.size(), 1u);
  EXPECT_EQ(run.results[0].start, 0);
  EXPECT_EQ(run.results[0].length, 60);
  EXPECT_EQ(run.results[0].valid_length, 23);
  ASSERT_TRUE(run.timeline.defined());
  EXPECT_EQ(run.timeline.size(0), 23);  // only real samples stitched
  EXPECT_EQ(run.stats.windows_emitted, 1u);
  EXPECT_EQ(run.stats.samples_ingested, 23u);
}

TEST(StreamSessionTest, AnomalyScoresFollowEwma) {
  Rig rig;
  StreamOptions options;
  options.task = StreamTask::kAnomaly;
  options.window_length = 60;
  options.hop = 60;
  options.ewma_alpha = 0.5;
  const Tensor series = MakeSeries(240, 2, 8);  // 4 tumbling windows

  const StreamRun run = FeedSeries(rig.manager.get(), options, series, 60);
  ASSERT_EQ(run.results.size(), 4u);
  double expect = run.results[0].raw_score;
  EXPECT_EQ(run.results[0].score, expect);
  for (size_t i = 1; i < run.results.size(); ++i) {
    EXPECT_GT(run.results[i].raw_score, 0.0);
    expect = 0.5 * run.results[i].raw_score + 0.5 * expect;
    EXPECT_DOUBLE_EQ(run.results[i].score, expect) << "window " << i;
  }
}

// ---------------------------------------------------------------------------
// StreamManager: caps, typed rejects, validation, stats
// ---------------------------------------------------------------------------

TEST(StreamManagerTest, SessionCapIsTypedReject) {
  Rig rig;
  StreamManager::Options mopts;
  mopts.max_sessions = 2;
  StreamManager manager(rig.engine.get(), mopts);
  StreamOptions options;
  options.task = StreamTask::kReconstruct;

  const int64_t a = manager.Open(options).ValueOrDie();
  manager.Open(options).ValueOrDie();
  Result<int64_t> third = manager.Open(options);
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(manager.stats().sessions_rejected, 1u);
  // Closing a session frees a slot.
  ASSERT_TRUE(manager.Close(a).ok());
  EXPECT_TRUE(manager.Open(options).ok());
  EXPECT_EQ(manager.stats().sessions_opened, 3u);
}

TEST(StreamManagerTest, BufferBudgetSurfacesAsBackpressure) {
  Rig rig;
  StreamManager::Options mopts;
  mopts.max_buffered_samples = 70;  // holds one 60-sample window + slack
  StreamManager manager(rig.engine.get(), mopts);
  StreamOptions options;
  options.task = StreamTask::kReconstruct;
  const int64_t id = manager.Open(options).ValueOrDie();

  // 50 buffered (< one 60-sample window, nothing drains) + 25 > 70.
  ASSERT_TRUE(manager.Append(id, MakeSeries(50, 2, 9)).ok());
  Status rejected = manager.Append(id, MakeSeries(25, 2, 10));
  EXPECT_EQ(rejected.code(), StatusCode::kOutOfMemory);
  // Not sticky: a smaller chunk still fits (and completes a window, which
  // drains the buffer).
  EXPECT_TRUE(manager.Append(id, MakeSeries(10, 2, 11)).ok());
  const StreamStats stats = manager.session_stats(id).ValueOrDie();
  EXPECT_EQ(stats.rejected_backpressure, 1u);
  EXPECT_EQ(stats.windows_emitted, 1u);
  EXPECT_EQ(stats.samples_buffered, 0);
  EXPECT_TRUE(manager.Close(id).ok());

  // A budget that cannot hold even one window would wedge permanently in
  // backpressure, so Open refuses it up front.
  StreamManager::Options tiny;
  tiny.max_buffered_samples = 30;
  StreamManager wedged(rig.engine.get(), tiny);
  EXPECT_EQ(wedged.Open(options).status().code(), StatusCode::kInvalidArgument);
}

// Engine admission backpressure is retryable, not sticky: the refused window
// stays buffered and an empty retry Append resumes the stream exactly where
// it left off.
TEST(StreamSessionTest, EngineBackpressureRetainsWindowAndIsRetryable) {
  Rig rig;
  serve::InferenceEngineOptions eopts;
  eopts.max_queue = 1;  // one slot: a parked request fills the engine
  eopts.cache_bytes = 0;
  eopts.start_paused = true;
  serve::InferenceEngine engine(rig.frozen.get(), eopts);
  StreamManager manager(&engine);
  StreamOptions options;
  options.task = StreamTask::kClassify;
  options.window_length = 60;
  options.hop = 60;
  const int64_t id = manager.Open(options).ValueOrDie();

  // Park a request in the paused engine's only queue slot.
  serve::InferenceRequest parked;
  parked.series = MakeSeries(60, 2, 40);
  auto parked_future = engine.Submit(std::move(parked));

  const Tensor series = MakeSeries(60, 2, 41);
  Status rejected = manager.Append(id, series);
  EXPECT_EQ(rejected.code(), StatusCode::kOutOfMemory);
  StreamSession* session = manager.Find(id);
  EXPECT_FALSE(session->closed());
  EXPECT_EQ(session->stats().samples_buffered, 60);  // window retained
  EXPECT_EQ(session->stats().rejected_backpressure, 1u);

  // Drain the parked request, then resume the stream with an empty chunk.
  engine.Resume();
  ASSERT_TRUE(parked_future.get().status.ok());
  ASSERT_TRUE(manager.Append(id, Tensor({0, 2})).ok());
  std::vector<StreamWindowResult> results = session->TakeResults();
  ASSERT_EQ(results.size(), 1u);
  // The retried window is bit-identical to the unobstructed path.
  StreamRun want = FeedSeries(rig.manager.get(), options, series, 60);
  EXPECT_TRUE(BitEqual(results[0].logits, want.results[0].logits));
  EXPECT_TRUE(manager.Close(id).ok());
}

// A sticky engine failure (shutdown mid-stream) fails the session closed:
// later appends return the first error, and Close() still frees the
// manager's cap slot while reporting it.
TEST(StreamSessionTest, EngineFailureIsStickyButCloseFreesCapSlot) {
  Rig rig;
  serve::InferenceEngineOptions eopts;
  eopts.cache_bytes = 0;
  serve::InferenceEngine engine(rig.frozen.get(), eopts);
  StreamManager::Options mopts;
  mopts.max_sessions = 1;
  StreamManager manager(&engine, mopts);
  StreamOptions options;
  options.task = StreamTask::kClassify;
  options.window_length = 60;
  options.hop = 60;
  const int64_t id = manager.Open(options).ValueOrDie();

  engine.Shutdown();
  Status failed = manager.Append(id, MakeSeries(60, 2, 42));
  EXPECT_FALSE(failed.ok());
  EXPECT_NE(failed.code(), StatusCode::kOutOfMemory);  // not retryable
  EXPECT_EQ(manager.Append(id, MakeSeries(1, 2, 43)).code(), failed.code());

  // Close reports the sticky error but the slot frees up.
  EXPECT_FALSE(manager.Close(id).ok());
  EXPECT_TRUE(manager.Find(id)->closed());
  EXPECT_EQ(manager.open_sessions(), 0);
}

TEST(StreamManagerTest, ValidatesOptionsAgainstModel) {
  Rig rig;
  StreamOptions unknown_model;
  unknown_model.model_id = 7;
  EXPECT_EQ(rig.manager->Open(unknown_model).status().code(),
            StatusCode::kInvalidArgument);

  StreamOptions bad_window;
  bad_window.window_length = 61;  // > input_length
  EXPECT_EQ(rig.manager->Open(bad_window).status().code(),
            StatusCode::kInvalidArgument);

  StreamOptions bad_hop;
  bad_hop.window_length = 60;
  bad_hop.hop = 61;
  EXPECT_EQ(rig.manager->Open(bad_hop).status().code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(rig.manager->Append(99, MakeSeries(5, 2, 1)).code(),
            StatusCode::kNotFound);
}

TEST(StreamManagerTest, AggregateStatsSpanSessionsAndSurviveRelease) {
  Rig rig;
  StreamOptions options;
  options.task = StreamTask::kClassify;
  options.window_length = 60;
  options.hop = 60;
  const Tensor series = MakeSeries(120, 2, 12);  // 2 windows each

  FeedSeries(rig.manager.get(), options, series, 60);  // released inside
  const int64_t id = rig.manager->Open(options).ValueOrDie();
  ASSERT_TRUE(rig.manager->Append(id, series).ok());

  const StreamStats aggregate = rig.manager->stats();
  EXPECT_EQ(aggregate.windows_emitted, 4u);     // 2 retired + 2 live
  EXPECT_EQ(aggregate.samples_ingested, 240u);  // retired counters survive
  EXPECT_EQ(aggregate.sessions_opened, 2u);
  EXPECT_EQ(aggregate.sessions_closed, 1u);
  EXPECT_GT(aggregate.latency_p50_ms, 0.0);
  EXPECT_GE(aggregate.latency_p99_ms, aggregate.latency_p50_ms);
  EXPECT_TRUE(rig.manager->Close(id).ok());
}

// ---------------------------------------------------------------------------
// Concurrency: 8 sessions on one engine (TSan acceptance)
// ---------------------------------------------------------------------------

TEST(StreamManagerTest, EightConcurrentSessionsReproduceSoloRuns) {
  constexpr int kSessions = 8;
  const int64_t n = 150;
  StreamOptions options;
  options.task = StreamTask::kClassify;
  options.window_length = 60;
  options.hop = 30;
  options.carry_context = true;

  // Solo references, one stream at a time.
  std::vector<Tensor> series;
  std::vector<StreamRun> want;
  {
    Rig rig;
    for (int s = 0; s < kSessions; ++s) {
      series.push_back(MakeSeries(n, 2, 1000 + s));
      want.push_back(FeedSeries(rig.manager.get(), options, series[s], 7));
    }
  }

  // The same streams concurrently: shared engine + pool, one thread each.
  Rig rig;
  ThreadPool pool(4);
  ExecutionContext context(&pool);
  serve::InferenceEngineOptions eopts;
  eopts.num_workers = 3;
  eopts.max_micro_batch = 8;
  eopts.context = &context;
  serve::InferenceEngine engine(rig.frozen.get(), eopts);
  StreamManager manager(&engine);

  std::vector<StreamRun> got(kSessions);
  std::vector<std::thread> threads;
  for (int s = 0; s < kSessions; ++s) {
    threads.emplace_back([&, s] {
      got[s] = FeedSeries(&manager, options, series[s], 7);
    });
  }
  for (auto& thread : threads) thread.join();

  for (int s = 0; s < kSessions; ++s) {
    ASSERT_EQ(got[s].results.size(), want[s].results.size());
    for (size_t i = 0; i < want[s].results.size(); ++i) {
      EXPECT_TRUE(BitEqual(got[s].results[i].logits, want[s].results[i].logits))
          << "session " << s << " window " << i
          << " diverged under concurrency (micro_batch="
          << got[s].results[i].micro_batch << ")";
      EXPECT_EQ(got[s].results[i].score, want[s].results[i].score);
    }
  }
}

// ---------------------------------------------------------------------------
// Satellites: deadline-miss accounting + compute telemetry
// ---------------------------------------------------------------------------

TEST(StreamSessionTest, LateWindowsCountedSessionAndEngineSide) {
  Rig rig;
  StreamOptions options;
  options.task = StreamTask::kClassify;
  options.window_length = 60;
  options.hop = 60;
  options.deadline_ms = 1e-6;  // every window resolves late
  const Tensor series = MakeSeries(180, 2, 13);

  const StreamRun run = FeedSeries(rig.manager.get(), options, series, 60);
  ASSERT_EQ(run.results.size(), 3u);
  for (const StreamWindowResult& result : run.results) EXPECT_TRUE(result.late);
  EXPECT_EQ(run.stats.late_windows, 3u);
  EXPECT_EQ(rig.engine->stats().deadline_missed, 3u);
  EXPECT_EQ(rig.engine->model_stats(0).deadline_missed, 3u);
}

TEST(StreamManagerTest, ComputeTelemetryPopulatedAndMonotone) {
  Rig rig;
  StreamOptions options;
  options.task = StreamTask::kReconstruct;
  options.window_length = 60;
  options.hop = 60;
  const Tensor series = MakeSeries(120, 2, 14);

  FeedSeries(rig.manager.get(), options, series, 60);
  const serve::InferenceEngineStats first = rig.engine->stats();
  EXPECT_GT(first.batches, 0u);
  EXPECT_GT(first.total_compute_ms, 0.0);
  EXPECT_GT(first.AvgComputeMs(), 0.0);
  EXPECT_GE(first.max_compute_ms, first.AvgComputeMs());

  FeedSeries(rig.manager.get(), options, series, 60);
  const serve::InferenceEngineStats second = rig.engine->stats();
  EXPECT_GT(second.batches, first.batches);
  EXPECT_GT(second.total_compute_ms, first.total_compute_ms);
  EXPECT_GE(second.max_compute_ms, first.max_compute_ms);

  // Per-model telemetry mirrors the aggregate on a single-model engine.
  const serve::InferenceEngineStats per_model = rig.engine->model_stats(0);
  EXPECT_EQ(per_model.batches, second.batches);
  EXPECT_DOUBLE_EQ(per_model.total_compute_ms, second.total_compute_ms);
}

// Carry-free pipelining: pipeline_depth > 1 keeps several windows in flight
// but harvests them in submission order, so results, scores and the stitched
// timeline are bit-identical to the sequential (depth 1) session — across
// ingestion chunk sizes, with the cache off so every window truly computes.
TEST(StreamSessionTest, PipelinedWindowsBitIdenticalToSequential) {
  Rig rig(/*cache_bytes=*/0, /*num_workers=*/2);
  const Tensor series = MakeSeries(150, 2, 21);
  for (StreamTask task : {StreamTask::kReconstruct, StreamTask::kClassify,
                          StreamTask::kAnomaly}) {
    StreamOptions options;
    options.task = task;
    options.window_length = 60;
    options.hop = 30;
    options.carry_context = false;  // pipelining precondition

    options.pipeline_depth = 1;
    const StreamRun sequential = FeedSeries(rig.manager.get(), options, series, 7);

    options.pipeline_depth = 4;
    const StreamRun pipelined = FeedSeries(rig.manager.get(), options, series, 7);
    const StreamRun chunked = FeedSeries(rig.manager.get(), options, series, 150);

    ASSERT_EQ(sequential.results.size(), pipelined.results.size());
    for (size_t i = 0; i < sequential.results.size(); ++i) {
      EXPECT_EQ(sequential.results[i].start, pipelined.results[i].start) << i;
      EXPECT_TRUE(BitEqual(sequential.results[i].logits, pipelined.results[i].logits))
          << i;
      EXPECT_EQ(sequential.results[i].raw_score, pipelined.results[i].raw_score) << i;
      EXPECT_EQ(sequential.results[i].score, chunked.results[i].score) << i;
    }
    EXPECT_TRUE(BitEqual(sequential.timeline, pipelined.timeline));
    EXPECT_TRUE(BitEqual(sequential.timeline, chunked.timeline));
  }
}

TEST(StreamManagerTest, PipeliningRequiresCarryFreeSessions) {
  Rig rig;
  StreamOptions options;
  options.carry_context = true;
  options.pipeline_depth = 4;
  Result<int64_t> opened = rig.manager->Open(options);
  EXPECT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);

  options.pipeline_depth = 0;
  options.carry_context = false;
  EXPECT_FALSE(rig.manager->Open(options).ok());

  options.pipeline_depth = 4;
  EXPECT_TRUE(rig.manager->Open(options).ok());
}

}  // namespace
}  // namespace stream
}  // namespace rita
