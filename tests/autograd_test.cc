// Tests for the autograd engine: graph mechanics, accumulation, no-grad mode,
// and closed-form gradient checks for key ops.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "tensor/tensor_ops.h"

namespace rita {
namespace ag {
namespace {

TEST(VariableTest, LeafHasNoGradFn) {
  Variable v(Tensor::Ones({2}), /*requires_grad=*/true);
  EXPECT_TRUE(v.requires_grad());
  EXPECT_EQ(v.grad_fn(), nullptr);
  EXPECT_FALSE(v.has_grad());
}

TEST(VariableTest, SimpleChainBackward) {
  Variable x(Tensor::Scalar(3.0f), true);
  Variable y = MulScalar(x, 2.0f);      // y = 2x
  Variable z = AddScalar(y, 1.0f);      // z = 2x + 1
  z.Backward();
  EXPECT_FLOAT_EQ(x.grad().Item(), 2.0f);
}

TEST(VariableTest, FanOutAccumulatesGrads) {
  Variable x(Tensor::Scalar(2.0f), true);
  Variable y = Add(Mul(x, x), x);  // y = x^2 + x, dy/dx = 2x + 1 = 5
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad().Item(), 5.0f);
}

TEST(VariableTest, DiamondGraph) {
  Variable x(Tensor::Scalar(3.0f), true);
  Variable a = MulScalar(x, 2.0f);  // 2x
  Variable b = MulScalar(x, 5.0f);  // 5x
  Variable y = Mul(a, b);           // 10 x^2, dy/dx = 20x = 60
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad().Item(), 60.0f);
}

TEST(VariableTest, BackwardTwiceAccumulates) {
  Variable x(Tensor::Scalar(1.0f), true);
  Variable y = MulScalar(x, 3.0f);
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad().Item(), 3.0f);
  Variable y2 = MulScalar(x, 3.0f);
  y2.Backward();
  EXPECT_FLOAT_EQ(x.grad().Item(), 6.0f);
  x.ZeroGrad();
  EXPECT_FALSE(x.has_grad());
}

TEST(VariableTest, NoGradModeBuildsNoGraph) {
  Variable x(Tensor::Scalar(2.0f), true);
  {
    NoGradGuard guard;
    Variable y = Mul(x, x);
    EXPECT_EQ(y.grad_fn(), nullptr);
  }
  Variable y = Mul(x, x);
  EXPECT_NE(y.grad_fn(), nullptr);
}

TEST(VariableTest, NonRequiringInputGetsNoGrad) {
  Variable x(Tensor::Scalar(2.0f), true);
  Variable c(Tensor::Scalar(10.0f), false);
  Variable y = Mul(x, c);
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad().Item(), 10.0f);
  EXPECT_FALSE(c.has_grad());
}

TEST(VariableTest, BackwardWithExplicitGrad) {
  Variable x(Tensor::FromVector({2}, {1.0f, 2.0f}), true);
  Variable y = MulScalar(x, 3.0f);
  y.Backward(Tensor::FromVector({2}, {1.0f, 10.0f}));
  EXPECT_FLOAT_EQ(x.grad().data()[0], 3.0f);
  EXPECT_FLOAT_EQ(x.grad().data()[1], 30.0f);
}

TEST(BroadcastGradTest, BiasAddReducesGrad) {
  Variable x(Tensor::Ones({2, 3}), true);
  Variable b(Tensor::Zeros({3}), true);
  Variable y = SumAll(Add(x, b));
  y.Backward();
  EXPECT_EQ(b.grad().shape(), (Shape{3}));
  EXPECT_FLOAT_EQ(b.grad().data()[0], 2.0f);  // summed over batch
  EXPECT_FLOAT_EQ(x.grad().data()[0], 1.0f);
}

TEST(MatMulGradTest, ClosedForm) {
  // y = sum(A B): dA = ones * B^T, dB = A^T * ones
  Variable a(Tensor::FromVector({2, 2}, {1, 2, 3, 4}), true);
  Variable b(Tensor::FromVector({2, 2}, {5, 6, 7, 8}), true);
  Variable y = SumAll(MatMul(a, b));
  y.Backward();
  // dA[i,k] = sum_j B[k,j]
  EXPECT_FLOAT_EQ(a.grad().At({0, 0}), 11.0f);
  EXPECT_FLOAT_EQ(a.grad().At({0, 1}), 15.0f);
  // dB[k,j] = sum_i A[i,k]
  EXPECT_FLOAT_EQ(b.grad().At({0, 0}), 4.0f);
  EXPECT_FLOAT_EQ(b.grad().At({1, 1}), 6.0f);
}

TEST(SoftmaxGradTest, GradSumsToZeroPerRow) {
  Rng rng(1);
  Variable x(Tensor::RandNormal({4, 6}, &rng), true);
  Variable s = SoftmaxLastDim(x);
  // Weighted sum objective so gradient is nontrivial.
  Tensor w = Tensor::RandNormal({4, 6}, &rng);
  Variable y = SumAll(Mul(s, Variable(w)));
  y.Backward();
  for (int64_t r = 0; r < 4; ++r) {
    float row_sum = 0.0f;
    for (int64_t j = 0; j < 6; ++j) row_sum += x.grad().At({r, j});
    EXPECT_NEAR(row_sum, 0.0f, 1e-5f);  // softmax grad is orthogonal to ones
  }
}

TEST(CrossEntropyTest, UniformLogitsGiveLogC) {
  Variable logits(Tensor::Zeros({2, 4}), true);
  Variable loss = CrossEntropy(logits, {0, 3});
  EXPECT_NEAR(loss.data().Item(), std::log(4.0f), 1e-5f);
  loss.Backward();
  // grad = (softmax - onehot)/B; softmax uniform = 0.25
  EXPECT_NEAR(logits.grad().At({0, 0}), (0.25f - 1.0f) / 2.0f, 1e-5f);
  EXPECT_NEAR(logits.grad().At({0, 1}), 0.25f / 2.0f, 1e-5f);
}

TEST(CrossEntropyTest, PerfectPredictionLowLoss) {
  Tensor t = Tensor::Zeros({1, 3});
  t.At({0, 1}) = 100.0f;
  Variable logits(t, true);
  Variable loss = CrossEntropy(logits, {1});
  EXPECT_LT(loss.data().Item(), 1e-4f);
}

TEST(MaskedMseTest, MaskRestrictsLoss) {
  Variable pred(Tensor::FromVector({1, 2, 2}, {1, 2, 3, 4}), true);
  Tensor target = Tensor::FromVector({1, 2, 2}, {0, 0, 0, 0});
  Tensor mask = Tensor::FromVector({1, 2, 2}, {1, 0, 0, 1});
  Variable loss = MaskedMse(pred, target, mask);
  // (1^2 + 4^2) / 2 = 8.5
  EXPECT_FLOAT_EQ(loss.data().Item(), 8.5f);
  loss.Backward();
  EXPECT_FLOAT_EQ(pred.grad().At({0, 0, 1}), 0.0f);   // masked out
  EXPECT_FLOAT_EQ(pred.grad().At({0, 0, 0}), 1.0f);   // 2 * 1 / 2
  EXPECT_FLOAT_EQ(pred.grad().At({0, 1, 1}), 4.0f);
}

TEST(DropoutTest, EvalModeIsIdentity) {
  Rng rng(1);
  Variable x(Tensor::Ones({10}), true);
  Variable y = Dropout(x, 0.5f, /*training=*/false, &rng);
  EXPECT_TRUE(y.data().AllClose(x.data()));
}

TEST(DropoutTest, TrainingScalesSurvivors) {
  Rng rng(1);
  Variable x(Tensor::Ones({10000}), true);
  Variable y = Dropout(x, 0.25f, /*training=*/true, &rng);
  double sum = 0.0;
  int64_t zeros = 0;
  for (int64_t i = 0; i < y.numel(); ++i) {
    const float v = y.data().data()[i];
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 1.0f / 0.75f, 1e-5f);
    }
    sum += v;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / y.numel(), 0.25, 0.02);
  EXPECT_NEAR(sum / y.numel(), 1.0, 0.03);  // inverted dropout preserves mean
}

TEST(UnfoldFoldTest, UnfoldExtractsWindows) {
  // T=4, C=2, w=2, stride=2 -> 2 windows
  Variable x(Tensor::Arange(8).Reshape({1, 4, 2}), false);
  Variable u = Unfold1d(x, 2, 2);
  EXPECT_EQ(u.shape(), (Shape{1, 2, 4}));
  EXPECT_EQ(u.data().At({0, 0, 0}), 0.0f);
  EXPECT_EQ(u.data().At({0, 1, 3}), 7.0f);
}

TEST(UnfoldFoldTest, FoldSumsOverlap) {
  // n_win=2, w=2, stride=1, C=1 -> T=3, middle element summed twice.
  Variable x(Tensor::FromVector({1, 2, 2}, {1, 2, 3, 4}), false);
  Variable f = Fold1d(x, 3, 1, 2, 1);
  EXPECT_EQ(f.shape(), (Shape{1, 3, 1}));
  EXPECT_EQ(f.data().At({0, 0, 0}), 1.0f);
  EXPECT_EQ(f.data().At({0, 1, 0}), 5.0f);  // 2 + 3
  EXPECT_EQ(f.data().At({0, 2, 0}), 4.0f);
}

TEST(LayerNormTest, NormalisesRows) {
  Rng rng(2);
  Variable x(Tensor::RandNormal({3, 8}, &rng, 5.0f, 2.0f), true);
  Variable gamma(Tensor::Ones({8}), true);
  Variable beta(Tensor::Zeros({8}), true);
  Variable y = LayerNorm(x, gamma, beta);
  for (int64_t r = 0; r < 3; ++r) {
    float mean = 0.0f, var = 0.0f;
    for (int64_t j = 0; j < 8; ++j) mean += y.data().At({r, j});
    mean /= 8.0f;
    for (int64_t j = 0; j < 8; ++j) {
      const float c = y.data().At({r, j}) - mean;
      var += c * c;
    }
    var /= 8.0f;
    EXPECT_NEAR(mean, 0.0f, 1e-4f);
    EXPECT_NEAR(var, 1.0f, 1e-2f);
  }
}

TEST(BatchNormTest, TrainingNormalisesAndUpdatesRunningStats) {
  Rng rng(3);
  Variable x(Tensor::RandNormal({64, 4}, &rng, 3.0f, 2.0f), true);
  Variable gamma(Tensor::Ones({4}), true);
  Variable beta(Tensor::Zeros({4}), true);
  Tensor rm = Tensor::Zeros({4});
  Tensor rv = Tensor::Ones({4});
  Variable y = BatchNorm(x, gamma, beta, &rm, &rv, /*training=*/true, 1.0f);
  // With momentum 1.0 running stats equal the batch stats.
  EXPECT_NEAR(rm.data()[0], 3.0f, 0.5f);
  EXPECT_NEAR(rv.data()[0], 4.0f, 1.0f);
  // Output is normalised per feature.
  float mean = 0.0f;
  for (int64_t r = 0; r < 64; ++r) mean += y.data().At({r, 0});
  EXPECT_NEAR(mean / 64.0f, 0.0f, 1e-4f);
}

TEST(BatchNormTest, EvalUsesRunningStats) {
  Variable x(Tensor::Full({2, 2}, 10.0f), false);
  Variable gamma(Tensor::Ones({2}), false);
  Variable beta(Tensor::Zeros({2}), false);
  Tensor rm = Tensor::Full({2}, 10.0f);
  Tensor rv = Tensor::Ones({2});
  Variable y = BatchNorm(x, gamma, beta, &rm, &rv, /*training=*/false);
  EXPECT_NEAR(y.data().At({0, 0}), 0.0f, 1e-4f);
}

TEST(ShapeGradTest, ConcatSliceRoundTrip) {
  Variable a(Tensor::Ones({2, 2}), true);
  Variable b(Tensor::Ones({3, 2}), true);
  Variable c = Concat({a, b}, 0);
  EXPECT_EQ(c.shape(), (Shape{5, 2}));
  Variable top = Slice(c, 0, 0, 2);
  Variable y = SumAll(MulScalar(top, 2.0f));
  y.Backward();
  EXPECT_FLOAT_EQ(a.grad().data()[0], 2.0f);
  EXPECT_FLOAT_EQ(b.grad().data()[0], 0.0f);  // sliced away
}

TEST(ReshapeGradTest, GradKeepsOriginalShape) {
  Variable x(Tensor::Ones({2, 3}), true);
  Variable y = SumAll(Reshape(x, {6}));
  y.Backward();
  EXPECT_EQ(x.grad().shape(), (Shape{2, 3}));
}

}  // namespace
}  // namespace ag
}  // namespace rita
