// Tests for the GRAIL baseline: landmark learning, Nystrom representations
// and k-NN classification on separable uni-variate data.
#include <gtest/gtest.h>

#include "baselines/grail.h"
#include "data/generators.h"

namespace rita {
namespace baselines {
namespace {

data::SplitDataset UnivariateTask(int64_t n, int64_t classes, uint64_t seed) {
  data::HarOptions opts;
  opts.num_samples = n;
  opts.length = 64;
  opts.channels = 1;
  opts.num_classes = classes;
  opts.noise = 0.1f;
  opts.seed = seed;
  data::TimeseriesDataset ds = data::GenerateHar(opts);
  Rng rng(seed ^ 1);
  return data::TrainValSplit(ds, 0.8, &rng);
}

TEST(GrailTest, FitProducesLandmarksAndReps) {
  data::SplitDataset split = UnivariateTask(120, 3, 31);
  GrailOptions opts;
  opts.num_landmarks = 8;
  Grail grail(opts);
  const double seconds = grail.Fit(split.train);
  EXPECT_GT(seconds, 0.0);
  EXPECT_EQ(grail.landmarks().size(0), 8);
  EXPECT_EQ(grail.landmarks().size(1), 64);

  Tensor reps = grail.Transform(split.valid.series);
  EXPECT_EQ(reps.shape(), (Shape{split.valid.size(), 8}));
}

TEST(GrailTest, BeatsChanceOnSeparableClasses) {
  data::SplitDataset split = UnivariateTask(200, 4, 41);
  GrailOptions opts;
  opts.num_landmarks = 12;
  opts.gamma = 5.0;
  Grail grail(opts);
  grail.Fit(split.train);
  const double acc = grail.Score(split.valid);
  EXPECT_GT(acc, 2.5 * (1.0 / 4.0)) << "GRAIL accuracy " << acc;
}

TEST(GrailTest, RepresentationsSeparateSimilarFromDissimilar) {
  data::SplitDataset split = UnivariateTask(100, 2, 51);
  GrailOptions opts;
  opts.num_landmarks = 6;
  Grail grail(opts);
  grail.Fit(split.train);

  // Same-class pairs are closer in representation space on average.
  Tensor reps = grail.Transform(split.train.series);
  const int64_t k = reps.size(1);
  double same = 0.0, diff = 0.0;
  int64_t same_n = 0, diff_n = 0;
  for (int64_t i = 0; i < split.train.size(); ++i) {
    for (int64_t j = i + 1; j < split.train.size(); ++j) {
      double d = 0.0;
      for (int64_t l = 0; l < k; ++l) {
        const double delta = reps.At({i, l}) - reps.At({j, l});
        d += delta * delta;
      }
      if (split.train.labels[i] == split.train.labels[j]) {
        same += d;
        ++same_n;
      } else {
        diff += d;
        ++diff_n;
      }
    }
  }
  EXPECT_LT(same / same_n, diff / diff_n);
}

TEST(GrailTest, RejectsMultivariateInput) {
  data::HarOptions opts;
  opts.num_samples = 10;
  opts.length = 32;
  opts.channels = 3;
  data::TimeseriesDataset multi = data::GenerateHar(opts);
  Grail grail(GrailOptions{});
  EXPECT_DEATH(grail.Fit(multi), "uni-variate");
}

TEST(GrailTest, KnnVotingWithLargerK) {
  data::SplitDataset split = UnivariateTask(150, 3, 61);
  GrailOptions opts;
  opts.num_landmarks = 10;
  opts.knn_k = 5;
  Grail grail(opts);
  grail.Fit(split.train);
  const double acc = grail.Score(split.valid);
  EXPECT_GT(acc, 1.0 / 3.0);
}

}  // namespace
}  // namespace baselines
}  // namespace rita
