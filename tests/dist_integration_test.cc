// Multi-process integration test for the distributed serving layer: real
// replica PROCESSES (not threads) on localhost, a router in the test
// process, and the two acceptance gates from the roadmap:
//
//   1. Bit-identity: classify / reconstruct / embed responses served by a
//      2-replica fleet are byte-for-byte identical to a single-process
//      InferenceEngine over the same weights.
//   2. Fault tolerance: SIGKILL-ing one replica mid-load yields typed
//      kUnavailable (retryable) errors only, no hangs and no crashes, and
//      the surviving replica keeps serving.
//
// The replica processes are this same binary re-exec'ed with --replica
// (see main() at the bottom): fork immediately followed by exec is safe in
// a threaded parent, and /proc/self/exe sidesteps argv[0] games. Each child
// writes its ephemeral port back through an inherited pipe fd.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "dist/replica_server.h"
#include "dist/router.h"
#include "dist/serde.h"
#include "serve/client.h"
#include "serve/frozen_model.h"
#include "serve/inference_engine.h"

namespace rita {
namespace dist {

constexpr uint64_t kModelSeed = 20240601;

model::RitaConfig IntegrationConfig() {
  model::RitaConfig config;
  config.input_channels = 2;
  config.input_length = 60;
  config.window = 5;
  config.stride = 5;
  config.num_classes = 4;
  config.encoder.dim = 16;
  config.encoder.num_layers = 2;
  config.encoder.num_heads = 2;
  config.encoder.ffn_hidden = 32;
  config.encoder.attention.kind = attn::AttentionKind::kGroup;
  config.encoder.attention.group.num_groups = 4;
  return config;
}

Tensor MakeSeries(int64_t t, int64_t c, uint64_t seed) {
  Rng rng(seed);
  return Tensor::RandNormal({t, c}, &rng);
}

bool BitEqual(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), sizeof(float) * a.numel()) == 0;
}

struct ReplicaProcess {
  pid_t pid = -1;
  int port = 0;
};

// fork + exec /proc/self/exe --replica; the child reports its bound port
// through an inherited pipe.
ReplicaProcess LaunchReplica(uint64_t model_seed) {
  int port_pipe[2];
  EXPECT_EQ(::pipe(port_pipe), 0);
  const std::string seed_arg = "--seed=" + std::to_string(model_seed);
  const std::string fd_arg = "--port-fd=" + std::to_string(port_pipe[1]);

  ReplicaProcess child;
  child.pid = ::fork();
  if (child.pid == 0) {
    // Child: only async-signal-safe calls between fork and exec.
    ::close(port_pipe[0]);
    const char* argv[] = {"/proc/self/exe", "--replica", seed_arg.c_str(),
                          fd_arg.c_str(), nullptr};
    ::execv("/proc/self/exe", const_cast<char**>(argv));
    _exit(127);  // exec failed
  }
  ::close(port_pipe[1]);
  EXPECT_GT(child.pid, 0);

  int32_t port = 0;
  size_t got = 0;
  while (got < sizeof(port)) {
    ssize_t n = ::read(port_pipe[0], reinterpret_cast<char*>(&port) + got,
                       sizeof(port) - got);
    if (n <= 0) break;
    got += static_cast<size_t>(n);
  }
  ::close(port_pipe[0]);
  EXPECT_EQ(got, sizeof(port)) << "replica child never reported a port";
  child.port = port;
  return child;
}

// Bounded reap: never lets a wedged child hang the test binary.
void ReapReplica(ReplicaProcess* child, bool expect_exited) {
  if (child->pid <= 0) return;
  int status = 0;
  for (int spin = 0; spin < 500; ++spin) {  // ~5 s budget
    const pid_t r = ::waitpid(child->pid, &status, WNOHANG);
    if (r == child->pid) {
      child->pid = -1;
      return;
    }
    ::usleep(10 * 1000);
  }
  EXPECT_FALSE(expect_exited) << "replica pid " << child->pid
                              << " did not exit; killing";
  ::kill(child->pid, SIGKILL);
  ::waitpid(child->pid, &status, 0);
  child->pid = -1;
}

TEST(DistIntegrationTest, TwoProcessFleetIsBitIdenticalToSingleProcess) {
  // Reference: a single-process engine over the same seed-derived weights.
  model::RitaConfig config = IntegrationConfig();
  Rng rng(kModelSeed);
  model::RitaModel source(config, &rng);
  serve::FrozenModel frozen(source);
  serve::InferenceEngineOptions options;
  options.num_workers = 2;
  serve::InferenceEngine engine(&frozen, options);
  serve::LocalClient local(&engine);

  ReplicaProcess p0 = LaunchReplica(kModelSeed);
  ReplicaProcess p1 = LaunchReplica(kModelSeed);
  ASSERT_GT(p0.port, 0);
  ASSERT_GT(p1.port, 0);

  Router router;
  router.AddReplica("127.0.0.1", p0.port);
  router.AddReplica("127.0.0.1", p1.port);
  ASSERT_TRUE(router.Start().ok());
  RemoteClient remote(&router);

  // The fleet must agree on weights before bit-identity even makes sense.
  ASSERT_TRUE(router.CheckModelSetsConsistent().ok());

  const struct {
    serve::ServeTask task;
    int64_t length;
  } cases[] = {
      {serve::ServeTask::kClassify, 60},
      {serve::ServeTask::kReconstruct, 50},
      {serve::ServeTask::kEmbed, 35},
  };
  int compared = 0;
  for (const auto& c : cases) {
    for (uint64_t seed = 0; seed < 8; ++seed) {
      serve::InferenceRequest local_request;
      local_request.series = MakeSeries(c.length, 2, 6000 + seed);
      local_request.task = c.task;
      serve::InferenceRequest remote_request;
      remote_request.series = MakeSeries(c.length, 2, 6000 + seed);
      remote_request.task = c.task;

      serve::InferenceResponse want =
          local.SubmitAndWait(std::move(local_request));
      serve::InferenceResponse got =
          remote.SubmitAndWait(std::move(remote_request));
      ASSERT_TRUE(want.status.ok()) << want.status.ToString();
      ASSERT_TRUE(got.status.ok()) << got.status.ToString();
      EXPECT_TRUE(BitEqual(want.output, got.output))
          << serve::ServeTaskName(c.task) << " seed " << seed
          << " diverges across the process boundary";
      ++compared;
    }
  }
  EXPECT_EQ(compared, 24);

  // Fleet stats saw the traffic.
  EXPECT_GE(remote.Stats().completed, 24u);

  // Orderly teardown: ask both replica processes to drain and exit.
  router.ShutdownReplicas();
  router.Shutdown();
  ReapReplica(&p0, /*expect_exited=*/true);
  ReapReplica(&p1, /*expect_exited=*/true);
}

TEST(DistIntegrationTest, KillingOneReplicaMidLoadIsTypedAndSurvivable) {
  ReplicaProcess p0 = LaunchReplica(kModelSeed);
  ReplicaProcess p1 = LaunchReplica(kModelSeed);
  ASSERT_GT(p0.port, 0);
  ASSERT_GT(p1.port, 0);

  RouterOptions options;
  options.request_timeout_ms = 10000.0;
  Router router(options);
  router.AddReplica("127.0.0.1", p0.port);
  router.AddReplica("127.0.0.1", p1.port);
  ASSERT_TRUE(router.Start().ok());
  EXPECT_EQ(router.num_live(), 2);

  // Warm the fleet, then SIGKILL replica 0 in the middle of a load burst.
  // Every response must resolve (no hangs), as either OK or a typed
  // retryable kUnavailable — never another code, never a crash.
  int ok_before = 0;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    serve::InferenceRequest request;
    request.series = MakeSeries(60, 2, 7000 + seed);
    if (router.Submit(std::move(request)).get().status.ok()) ++ok_before;
  }
  EXPECT_EQ(ok_before, 8);

  ::kill(p0.pid, SIGKILL);

  int ok_after = 0, unavailable = 0;
  for (uint64_t seed = 0; seed < 48; ++seed) {
    serve::InferenceRequest request;
    request.series = MakeSeries(60, 2, 8000 + seed);
    serve::InferenceResponse response = router.Submit(std::move(request)).get();
    if (response.status.ok()) {
      ++ok_after;
    } else {
      ASSERT_EQ(response.status.code(), StatusCode::kUnavailable)
          << "only typed retryable errors allowed, got: "
          << response.status.ToString();
      ++unavailable;
      // The contract: an immediate retry re-routes to the survivor.
      serve::InferenceRequest retry;
      retry.series = MakeSeries(60, 2, 8000 + seed);
      serve::InferenceResponse retried =
          router.Submit(std::move(retry)).get();
      EXPECT_TRUE(retried.status.ok())
          << "retry after typed failure must land on the survivor: "
          << retried.status.ToString();
      if (retried.status.ok()) ++ok_after;
    }
  }
  EXPECT_EQ(ok_after, 48) << "every request (or its retry) must be served";
  EXPECT_EQ(router.num_live(), 1);
  EXPECT_FALSE(router.replica_live(0));
  EXPECT_TRUE(router.replica_live(1));

  // The survivor still answers control-plane pulls and carries the fleet.
  EXPECT_GE(router.FleetStats().completed, 8u);
  const std::string text = router.FleetPrometheusText();
  EXPECT_NE(text.find("rita_fleet_replicas_live 1"), std::string::npos);

  router.ShutdownReplicas();
  router.Shutdown();
  ReapReplica(&p0, /*expect_exited=*/true);  // SIGKILLed: reaps instantly
  ReapReplica(&p1, /*expect_exited=*/true);
}

// ---------------------------------------------------------------------------
// Replica-process mode.

int RunReplicaProcess(uint64_t model_seed, int port_fd) {
  model::RitaConfig config = IntegrationConfig();
  Rng rng(model_seed);
  model::RitaModel source(config, &rng);
  serve::FrozenModel frozen(source);
  serve::InferenceEngineOptions eopts;
  eopts.num_workers = 2;
  serve::InferenceEngine engine(&frozen, eopts);

  std::promise<void> drain;
  ReplicaServerOptions sopts;
  sopts.on_remote_shutdown = [&drain] { drain.set_value(); };
  ReplicaServer server(&engine, sopts);
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "replica start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const int32_t port = server.port();
  if (::write(port_fd, &port, sizeof(port)) != sizeof(port)) return 1;
  ::close(port_fd);

  drain.get_future().wait();  // until the router sends kShutdown
  server.Shutdown();
  engine.Shutdown();
  return 0;
}

}  // namespace dist
}  // namespace rita

// Custom main: `--replica` turns this binary into a replica process; anything
// else runs the gtest suite. (The object file's main wins over gtest_main's.)
int main(int argc, char** argv) {
  bool replica = false;
  uint64_t seed = rita::dist::kModelSeed;
  int port_fd = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--replica") replica = true;
    if (arg.rfind("--seed=", 0) == 0) seed = std::stoull(arg.substr(7));
    if (arg.rfind("--port-fd=", 0) == 0) port_fd = std::stoi(arg.substr(10));
  }
  if (replica) {
    if (port_fd < 0) {
      std::fprintf(stderr, "--replica requires --port-fd\n");
      return 2;
    }
    return rita::dist::RunReplicaProcess(seed, port_fd);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
