// Tests for rita::obs and its integration with the serving stack: histogram
// quantile accuracy and bucket-boundary behavior, snapshot merge/subtract
// algebra, lock-free counter convergence under threads, the Prometheus
// exposition, per-model vs aggregate EngineStats consistency under
// concurrent multi-model load (run under RITA_SANITIZE=thread in CI),
// ResetStatsWindow semantics, the periodic stats logger, and the trace
// layer: sampling, bounded rings, Chrome dump contents, and bitwise
// neutrality of tracing on the engine's outputs.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <fstream>
#include <future>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/trace.h"
#include "serve/frozen_model.h"
#include "serve/inference_engine.h"
#include "serve/model_registry.h"

namespace rita {
namespace obs {
namespace {

using serve::FrozenModel;
using serve::InferenceEngine;
using serve::InferenceEngineOptions;
using serve::InferenceEngineStats;
using serve::InferenceRequest;
using serve::InferenceResponse;
using serve::ModelRegistry;
using serve::ServeTask;

model::RitaConfig SmallConfig() {
  model::RitaConfig config;
  config.input_channels = 2;
  config.input_length = 60;
  config.window = 5;
  config.stride = 5;
  config.num_classes = 4;
  config.encoder.dim = 16;
  config.encoder.num_layers = 2;
  config.encoder.num_heads = 2;
  config.encoder.ffn_hidden = 32;
  config.encoder.dropout = 0.1f;
  config.encoder.attention.kind = attn::AttentionKind::kGroup;
  config.encoder.attention.group.num_groups = 4;
  return config;
}

Tensor MakeSeries(int64_t t, int64_t c, uint64_t seed) {
  Rng rng(seed);
  return Tensor::RandNormal({t, c}, &rng);
}

bool BitEqual(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), sizeof(float) * a.numel()) == 0;
}

// ---------------------------------------------------------------------------
// Histogram core.

TEST(HistogramTest, CountSumAndQuantilesOnUniform) {
  Histogram h;
  for (int v = 1; v <= 1000; ++v) h.Observe(static_cast<double>(v));
  EXPECT_EQ(h.Count(), 1000u);
  EXPECT_NEAR(h.Sum(), 500500.0, 1e-6);
  EXPECT_DOUBLE_EQ(h.Max(), 1000.0);
  // Log-linear buckets bound relative error by the sub-bucket width (6.25%);
  // interpolation keeps it well inside that on a uniform distribution.
  EXPECT_NEAR(h.Quantile(0.5), 500.0, 500.0 * 0.08);
  EXPECT_NEAR(h.Quantile(0.95), 950.0, 950.0 * 0.08);
  EXPECT_NEAR(h.Quantile(0.99), 990.0, 990.0 * 0.08);
  EXPECT_LE(h.Quantile(1.0), 1024.0 + 1e-9);  // upper edge of 1000's bucket
  EXPECT_GE(h.Quantile(1.0), 1000.0 * (1.0 - 1e-9));
}

TEST(HistogramTest, BucketEdgesContainTheirValues) {
  // Every representative value must land in a bucket whose [lower, upper)
  // range contains it — including exact bucket-boundary values, which belong
  // to the bucket they open.
  for (int e = -10; e < 21; ++e) {
    for (int sub = 0; sub < 16; ++sub) {
      const double edge = std::ldexp(1.0 + sub / 16.0, e);
      for (double v : {edge, std::nextafter(edge, 1e30), edge * 1.001}) {
        const int idx = HistogramLayout::Index(v);
        EXPECT_GE(v, HistogramLayout::LowerEdge(idx))
            << "v=" << v << " idx=" << idx;
        EXPECT_LT(v, HistogramLayout::UpperEdge(idx))
            << "v=" << v << " idx=" << idx;
      }
    }
  }
  // Zero/negative/NaN land in the zero bucket; tiny underflow clamps into
  // the first finite bucket; overflow lands in the +Inf bucket.
  EXPECT_EQ(HistogramLayout::Index(0.0), 0);
  EXPECT_EQ(HistogramLayout::Index(-3.5), 0);
  EXPECT_EQ(HistogramLayout::Index(std::nan("")), 0);
  EXPECT_EQ(HistogramLayout::Index(1e-9), 1);
  EXPECT_EQ(HistogramLayout::Index(std::ldexp(1.0, 25)),
            HistogramLayout::kNumBuckets - 1);
}

TEST(HistogramTest, BoundaryValueQuantileStaysInItsBucket) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Observe(2.0);  // exact octave boundary
  const double q50 = h.Quantile(0.5);
  EXPECT_GE(q50, 2.0);
  EXPECT_LT(q50, 2.0 * (1.0 + 1.0 / 16.0));
}

TEST(HistogramTest, OverflowAndZeroQuantiles) {
  Histogram h;
  h.Observe(0.0);
  h.Observe(-1.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  const double huge = std::ldexp(1.0, 23);  // past the top octave
  h.Observe(huge);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), huge);  // overflow bucket reports max
}

TEST(HistogramTest, MergeEqualsCombinedStream) {
  Histogram odds, evens, combined;
  for (int v = 1; v <= 2000; ++v) {
    combined.Observe(0.25 * v);
    (v % 2 ? odds : evens).Observe(0.25 * v);
  }
  Histogram merged;
  merged.MergeFrom(odds);
  merged.MergeFrom(evens);
  const HistogramSnapshot a = merged.Snapshot();
  const HistogramSnapshot b = combined.Snapshot();
  ASSERT_EQ(a.Count(), b.Count());
  EXPECT_EQ(a.bucket_counts(), b.bucket_counts());
  EXPECT_NEAR(a.Sum(), b.Sum(), 1e-9 * b.Sum());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.Quantile(q), b.Quantile(q)) << "q=" << q;
  }
}

TEST(HistogramTest, SnapshotMergeAndSubtractAlgebra) {
  Histogram h;
  for (int v = 1; v <= 100; ++v) h.Observe(1.0 * v);
  const HistogramSnapshot base = h.Snapshot();
  for (int v = 1; v <= 50; ++v) h.Observe(1000.0);
  HistogramSnapshot now = h.Snapshot();
  now.SubtractBase(base);
  EXPECT_EQ(now.Count(), 50u);
  EXPECT_NEAR(now.Sum(), 50000.0, 1e-6);
  // The windowed view contains only the 1000ms observations.
  EXPECT_GE(now.Quantile(0.01), 1000.0 * (1.0 - 1.0 / 16.0));

  HistogramSnapshot merged = now;
  merged.MergeFrom(base);
  EXPECT_EQ(merged.Count(), 150u);
}

TEST(CounterTest, ConvergesUnderConcurrentAdds) {
  Counter c;
  Gauge g;
  MaxGauge m;
  constexpr int kThreads = 8;
  constexpr int kAdds = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &m, t] {
      for (int i = 0; i < kAdds; ++i) {
        c.Add(1);
        m.Observe(static_cast<double>(t * kAdds + i));
      }
    });
  }
  for (auto& t : threads) t.join();
  g.Set(3.5);
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kAdds);
  EXPECT_DOUBLE_EQ(m.Value(), static_cast<double>(kThreads * kAdds - 1));
  EXPECT_DOUBLE_EQ(g.Value(), 3.5);
  m.Reset();
  EXPECT_DOUBLE_EQ(m.Value(), 0.0);
}

TEST(RegistryTest, SameNameAndLabelsResolveToOneInstance) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("hits", "h", {{"model", "0"}});
  Counter* b = registry.GetCounter("hits", "h", {{"model", "0"}});
  Counter* other = registry.GetCounter("hits", "h", {{"model", "1"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, other);
  a->Add(2);
  other->Add(5);
  const auto families = registry.Collect();
  ASSERT_EQ(families.size(), 1u);
  EXPECT_EQ(families[0].name, "hits");
  ASSERT_EQ(families[0].instances.size(), 2u);
  EXPECT_DOUBLE_EQ(families[0].instances[0].value +
                       families[0].instances[1].value,
                   7.0);
}

TEST(PrometheusTest, RendersCountersGaugesAndHistograms) {
  MetricsRegistry registry;
  registry.GetCounter("rita_test_total", "a counter", {{"model", "0"}})->Add(4);
  registry.GetGauge("rita_test_depth", "a gauge")->Set(2.5);
  Histogram* h = registry.GetHistogram("rita_test_ms", "a histogram");
  h->Observe(1.0);
  h->Observe(2.0);
  h->Observe(1000000.0);  // overflow bucket: only +Inf covers it
  const std::string text = PrometheusText(registry);
  EXPECT_NE(text.find("# TYPE rita_test_total counter"), std::string::npos);
  EXPECT_NE(text.find("rita_test_total{model=\"0\"} 4"), std::string::npos);
  EXPECT_NE(text.find("# TYPE rita_test_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("rita_test_depth 2.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE rita_test_ms histogram"), std::string::npos);
  // 1.0 opens the [1, 1.0625) bucket, whose upper edge renders as 1.0625.
  EXPECT_NE(text.find("rita_test_ms_bucket{le=\"1.0625\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("rita_test_ms_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("rita_test_ms_count 3"), std::string::npos);
  EXPECT_NE(text.find("rita_test_ms_sum 1000003"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Engine integration.

// Satellite: sum of model_stats(i) counters equals aggregate stats() under
// concurrent multi-model load. Exact for integer counters; the double sums
// only differ by FP summation order.
TEST(EngineObsTest, PerModelStatsSumToAggregateUnderLoad) {
  model::RitaConfig config = SmallConfig();
  Rng rng_a(11), rng_b(12);
  model::RitaModel source_a(config, &rng_a), source_b(config, &rng_b);
  FrozenModel frozen_a(source_a), frozen_b(source_b);
  ModelRegistry registry;
  registry.Register("a", &frozen_a);
  registry.Register("b", &frozen_b);

  InferenceEngineOptions options;
  options.num_workers = 3;
  options.max_micro_batch = 8;
  InferenceEngine engine(&registry, options);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 24;
  std::vector<std::thread> clients;
  std::atomic<int> ok{0};
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&engine, &ok, t] {
      for (int i = 0; i < kPerThread; ++i) {
        InferenceRequest request;
        // Some duplicate series (seed modulo) so cache hits are exercised;
        // every completion path must keep the per-model split consistent.
        request.series = MakeSeries(60, 2, static_cast<uint64_t>(i % 16));
        request.task = ServeTask::kClassify;
        request.model_id = (t + i) % 2;
        const InferenceResponse response = engine.Run(std::move(request));
        if (response.status.ok()) ok.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  ASSERT_EQ(ok.load(), kThreads * kPerThread);

  const InferenceEngineStats agg = engine.stats();
  const InferenceEngineStats m0 = engine.model_stats(0);
  const InferenceEngineStats m1 = engine.model_stats(1);
  EXPECT_EQ(agg.completed, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(agg.completed, m0.completed + m1.completed);
  EXPECT_EQ(agg.batches, m0.batches + m1.batches);
  EXPECT_EQ(agg.cache_hits, m0.cache_hits + m1.cache_hits);
  EXPECT_EQ(agg.cache_misses, m0.cache_misses + m1.cache_misses);
  EXPECT_EQ(agg.deadline_missed, m0.deadline_missed + m1.deadline_missed);
  EXPECT_EQ(agg.forward_failures, m0.forward_failures + m1.forward_failures);
  EXPECT_EQ(agg.graph_batches, m0.graph_batches + m1.graph_batches);
  EXPECT_EQ(agg.graph_nodes, m0.graph_nodes + m1.graph_nodes);
  EXPECT_GE(agg.max_micro_batch,
            std::max(m0.max_micro_batch, m1.max_micro_batch));
  const double sum_compute = m0.total_compute_ms + m1.total_compute_ms;
  EXPECT_NEAR(agg.total_compute_ms, sum_compute,
              1e-6 * std::max(1.0, sum_compute));
  const double sum_queue = m0.total_queue_ms + m1.total_queue_ms;
  EXPECT_NEAR(agg.total_queue_ms, sum_queue, 1e-6 * std::max(1.0, sum_queue));
}

TEST(EngineObsTest, PrometheusExportListsEveryEngineMetric) {
  model::RitaConfig config = SmallConfig();
  Rng rng(21);
  model::RitaModel source(config, &rng);
  FrozenModel frozen(source);
  InferenceEngineOptions options;
  options.num_workers = 2;
  InferenceEngine engine(&frozen, options);
  for (int i = 0; i < 10; ++i) {
    InferenceRequest request;
    request.series = MakeSeries(60, 2, static_cast<uint64_t>(100 + i));
    request.task = ServeTask::kClassify;
    ASSERT_TRUE(engine.Run(std::move(request)).status.ok());
  }
  const std::string text = engine.PrometheusText();
  // Every EngineStats counter/sum/max family plus the new latency
  // histograms and snapshot gauges must appear in the exposition.
  for (const char* family :
       {"rita_requests_completed_total", "rita_requests_rejected_total",
        "rita_batches_total", "rita_cache_hits_total",
        "rita_cache_misses_total", "rita_deadline_missed_total",
        "rita_forward_failures_total", "rita_graph_batches_total",
        "rita_graph_nodes_total", "rita_queue_latency_ms",
        "rita_compute_latency_ms", "rita_micro_batch_size",
        "rita_graph_critical_path_ms", "rita_graph_idle_ms",
        "rita_micro_batch_max", "rita_compute_latency_max_ms",
        "rita_graph_ready_high_water", "rita_queue_depth",
        "rita_in_flight_batches", "rita_cache_bytes", "rita_cache_entries",
        "rita_model_weight_bytes", "rita_model_precision"}) {
    EXPECT_NE(text.find(family), std::string::npos)
        << "missing metric family: " << family;
  }
  EXPECT_NE(text.find("rita_requests_completed_total 10"), std::string::npos);
  // Histogram percentiles over the served load are queryable and sane.
  const HistogramSnapshot compute =
      engine.metrics()
          .GetHistogram("rita_compute_latency_ms", "", {})
          ->Snapshot();
  EXPECT_EQ(compute.Count(), 10u);  // one solo batch per sequential request
  EXPECT_GT(compute.Quantile(0.5), 0.0);
  EXPECT_LE(compute.Quantile(0.5), compute.Quantile(0.99));
  const HistogramSnapshot queue =
      engine.metrics()
          .GetHistogram("rita_queue_latency_ms", "", {})
          ->Snapshot();
  EXPECT_EQ(queue.Count(), 10u);
  EXPECT_LE(queue.Quantile(0.5), queue.Quantile(0.99));
}

TEST(EngineObsTest, ResetStatsWindowStartsAFreshInterval) {
  model::RitaConfig config = SmallConfig();
  Rng rng(31);
  model::RitaModel source(config, &rng);
  FrozenModel frozen(source);
  InferenceEngineOptions options;
  options.num_workers = 1;
  InferenceEngine engine(&frozen, options);
  for (int i = 0; i < 5; ++i) {
    InferenceRequest request;
    request.series = MakeSeries(60, 2, static_cast<uint64_t>(200 + i));
    ASSERT_TRUE(engine.Run(std::move(request)).status.ok());
  }
  EXPECT_EQ(engine.stats().completed, 5u);
  EXPECT_EQ(engine.model_stats(0).completed, 5u);
  EXPECT_GT(engine.stats().max_micro_batch, 0);

  engine.ResetStatsWindow();
  const InferenceEngineStats windowed = engine.stats();
  EXPECT_EQ(windowed.completed, 0u);
  EXPECT_EQ(windowed.batches, 0u);
  EXPECT_EQ(windowed.max_micro_batch, 0);  // no longer a lifetime maximum
  EXPECT_DOUBLE_EQ(windowed.total_compute_ms, 0.0);
  EXPECT_EQ(engine.model_stats(0).completed, 0u);

  for (int i = 0; i < 2; ++i) {
    InferenceRequest request;
    request.series = MakeSeries(60, 2, static_cast<uint64_t>(300 + i));
    ASSERT_TRUE(engine.Run(std::move(request)).status.ok());
  }
  EXPECT_EQ(engine.stats().completed, 2u);
  EXPECT_EQ(engine.stats().max_micro_batch, 1);
  // The backing metrics stay cumulative for Prometheus scrapes.
  EXPECT_NE(engine.PrometheusText().find("rita_requests_completed_total 7"),
            std::string::npos);
}

TEST(EngineObsTest, StatsLoggerHookReceivesSnapshots) {
  model::RitaConfig config = SmallConfig();
  Rng rng(41);
  model::RitaModel source(config, &rng);
  FrozenModel frozen(source);

  std::mutex mu;
  std::vector<InferenceEngineStats> snapshots;
  InferenceEngineOptions options;
  options.num_workers = 1;
  options.stats_log_interval_ms = 2.0;
  options.stats_log_hook = [&mu, &snapshots](const InferenceEngineStats& s) {
    std::lock_guard<std::mutex> lock(mu);
    snapshots.push_back(s);
  };
  {
    InferenceEngine engine(&frozen, options);
    for (int i = 0; i < 6; ++i) {
      InferenceRequest request;
      request.series = MakeSeries(60, 2, static_cast<uint64_t>(400 + i));
      ASSERT_TRUE(engine.Run(std::move(request)).status.ok());
    }
    engine.Shutdown();  // emits one final snapshot after joining the logger
  }
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_GE(snapshots.size(), 1u);
  EXPECT_EQ(snapshots.back().completed, 6u);
}

// ---------------------------------------------------------------------------
// Tracing.

std::vector<Tensor> RunTraceWorkload(const FrozenModel* frozen, int requests) {
  InferenceEngineOptions options;
  options.num_workers = 2;
  options.use_graph_executor = true;  // node + kernel spans ride the graph
  InferenceEngine engine(frozen, options);
  std::vector<std::future<InferenceResponse>> futures;
  futures.reserve(requests);
  for (int i = 0; i < requests; ++i) {
    InferenceRequest request;
    request.series = MakeSeries(60, 2, static_cast<uint64_t>(i));
    request.task = ServeTask::kClassify;
    futures.push_back(engine.Submit(std::move(request)));
  }
  std::vector<Tensor> outputs;
  outputs.reserve(requests);
  for (auto& f : futures) {
    InferenceResponse response = f.get();
    EXPECT_TRUE(response.status.ok()) << response.status.message();
    outputs.push_back(std::move(response.output));
  }
  return outputs;
}

// Satellite: tracing must be bitwise-neutral — identical engine outputs with
// tracing off and with every request traced.
TEST(TraceTest, TracingIsBitwiseNeutral) {
  model::RitaConfig config = SmallConfig();
  Rng rng(51);
  model::RitaModel source(config, &rng);
  FrozenModel frozen(source);

  SetTracingForTesting(0);
  ClearTraceForTesting();
  const std::vector<Tensor> untraced = RunTraceWorkload(&frozen, 12);
  EXPECT_EQ(TraceEventCount(), 0u);

  SetTracingForTesting(1);
  const std::vector<Tensor> traced = RunTraceWorkload(&frozen, 12);
  SetTracingForTesting(0);
  EXPECT_GT(TraceEventCount(), 0u);

  ASSERT_EQ(untraced.size(), traced.size());
  for (size_t i = 0; i < untraced.size(); ++i) {
    EXPECT_TRUE(BitEqual(untraced[i], traced[i])) << "request " << i;
  }

  // The dump shows the whole request lifecycle: admission and queue wait,
  // the batch forward, per-node graph spans and kernel spans, nested by
  // containment on their thread tracks.
  std::ostringstream dump;
  DumpTraceTo(dump);
  const std::string json = dump.str();
  for (const char* needle :
       {"\"admission\"", "\"queue\"", "\"batch_forward\"", "\"request\"",
        "\"cat\":\"serve\"", "\"cat\":\"graph\"", "\"cat\":\"kernel\"",
        "\"kmeans_grouping\"", "\"fused_group_attention\"",
        "\"qkv_projection_gemm\"", "\"frontend\"", "trace_id"}) {
    EXPECT_NE(json.find(needle), std::string::npos)
        << "trace dump missing " << needle;
  }

  // File dump round-trips.
  const std::string path = "obs_trace_test.json";
  ASSERT_TRUE(DumpTrace(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream file_contents;
  file_contents << in.rdbuf();
  EXPECT_NE(file_contents.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(file_contents.str().find("\"ph\":\"X\""), std::string::npos);
  ClearTraceForTesting();
}

TEST(TraceTest, SamplingTracesOneInN) {
  model::RitaConfig config = SmallConfig();
  Rng rng(61);
  model::RitaModel source(config, &rng);
  FrozenModel frozen(source);

  ClearTraceForTesting();
  SetTracingForTesting(4);
  InferenceEngineOptions options;
  options.num_workers = 1;
  InferenceEngine engine(&frozen, options);
  for (int i = 0; i < 8; ++i) {
    InferenceRequest request;
    request.series = MakeSeries(60, 2, static_cast<uint64_t>(500 + i));
    ASSERT_TRUE(engine.Run(std::move(request)).status.ok());
  }
  SetTracingForTesting(0);

  std::ostringstream dump;
  DumpTraceTo(dump);
  const std::string json = dump.str();
  // Exactly 2 of the 8 sequential admissions sample at 1-in-4, whatever the
  // global admission counter's phase was when the test started.
  size_t request_spans = 0;
  for (size_t pos = json.find("\"name\":\"request\""); pos != std::string::npos;
       pos = json.find("\"name\":\"request\"", pos + 1)) {
    ++request_spans;
  }
  EXPECT_EQ(request_spans, 2u);
  ClearTraceForTesting();
}

TEST(TraceTest, RingBufferIsBounded) {
  ClearTraceForTesting();
  const double now = TraceNowUs();
  for (uint64_t i = 0; i < kTraceRingCapacity + 1000; ++i) {
    RecordSpan(/*trace_id=*/1, "spam", "test", now, 1.0);
  }
  // This thread's ring saturates at its capacity; the oldest events were
  // overwritten rather than growing the buffer.
  EXPECT_EQ(TraceEventCount(), static_cast<uint64_t>(kTraceRingCapacity));
  ClearTraceForTesting();
}

TEST(TraceTest, ScopedTraceNestsAndRestores) {
  EXPECT_EQ(CurrentTrace().trace_id, 0u);
  {
    ScopedTrace outer(7);
    EXPECT_EQ(CurrentTrace().trace_id, 7u);
    {
      ScopedTrace inner(9);
      EXPECT_EQ(CurrentTrace().trace_id, 9u);
    }
    EXPECT_EQ(CurrentTrace().trace_id, 7u);
  }
  EXPECT_EQ(CurrentTrace().trace_id, 0u);
  // Spans constructed with an ambient zero context record nothing.
  ClearTraceForTesting();
  { Span span("noop", "test"); }
  EXPECT_EQ(TraceEventCount(), 0u);
}

}  // namespace
}  // namespace obs
}  // namespace rita
