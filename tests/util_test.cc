// Unit tests for the util substrate: Status/Result, Rng, ThreadPool, CSV and
// binary serialization.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <numeric>

#include "util/csv.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace rita {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad n");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad n");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto inner = []() { return Status::NotFound("missing"); };
  auto outer = [&]() -> Status {
    RITA_RETURN_NOT_OK(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::IoError("disk"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(RngTest, DeterministicUnderSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(13);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 13);
  }
}

TEST(RngTest, NormalMomentsRoughlyStandard) {
  Rng rng(11);
  const int n = 20000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(3);
  auto s = rng.SampleWithoutReplacement(50, 20);
  ASSERT_EQ(s.size(), 20u);
  std::sort(s.begin(), s.end());
  EXPECT_TRUE(std::adjacent_find(s.begin(), s.end()) == s.end());
  for (int64_t v : s) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 50);
  }
}

TEST(RngTest, ForkedStreamIndependentOfParentDraws) {
  Rng parent(5);
  Rng child = parent.Fork();
  // Child should not replay the parent's stream.
  Rng parent2(5);
  (void)parent2.Fork();
  EXPECT_NE(child.NextU64(), parent.NextU64());
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, 1000, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(5, 5, [&](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SubmitAndWait) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 64; ++i) pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, MinShardRunsInline) {
  ThreadPool pool(4);
  std::vector<int> hits(10, 0);  // not atomic: must run single-shard
  pool.ParallelFor(
      0, 10, [&](int64_t lo, int64_t hi) { for (int64_t i = lo; i < hi; ++i) ++hits[i]; },
      /*min_shard=*/100);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
  EXPECT_GE(sw.ElapsedMillis(), sw.ElapsedSeconds() * 1e3 - 1e-6);
}

TEST(SerializeTest, RoundTripsScalarsStringsAndFloats) {
  const std::string path = ::testing::TempDir() + "/ser_test.bin";
  {
    auto w = BinaryWriter::Open(path);
    ASSERT_TRUE(w.ok());
    BinaryWriter writer = w.MoveValueOrDie();
    writer.WriteU32(7);
    writer.WriteI64(-42);
    writer.WriteF64(3.5);
    writer.WriteString("rita");
    const std::vector<float> buf = {1.0f, -2.5f, 0.0f};
    writer.WriteFloats(buf.data(), 3);
    ASSERT_TRUE(writer.Close().ok());
  }
  {
    auto r = BinaryReader::Open(path);
    ASSERT_TRUE(r.ok());
    BinaryReader reader = r.MoveValueOrDie();
    uint32_t u = 0;
    int64_t i = 0;
    double d = 0;
    std::string s;
    float buf[3];
    ASSERT_TRUE(reader.ReadU32(&u).ok());
    ASSERT_TRUE(reader.ReadI64(&i).ok());
    ASSERT_TRUE(reader.ReadF64(&d).ok());
    ASSERT_TRUE(reader.ReadString(&s).ok());
    ASSERT_TRUE(reader.ReadFloats(buf, 3).ok());
    EXPECT_EQ(u, 7u);
    EXPECT_EQ(i, -42);
    EXPECT_DOUBLE_EQ(d, 3.5);
    EXPECT_EQ(s, "rita");
    EXPECT_FLOAT_EQ(buf[1], -2.5f);
    EXPECT_TRUE(reader.AtEof());
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, OpenMissingFileFails) {
  auto r = BinaryReader::Open("/nonexistent/dir/file.bin");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(SerializeTest, FloatCountMismatchDetected) {
  const std::string path = ::testing::TempDir() + "/ser_mismatch.bin";
  {
    auto w = BinaryWriter::Open(path);
    ASSERT_TRUE(w.ok());
    BinaryWriter writer = w.MoveValueOrDie();
    const std::vector<float> buf = {1.0f, 2.0f};
    writer.WriteFloats(buf.data(), 2);
    ASSERT_TRUE(writer.Close().ok());
  }
  auto r = BinaryReader::Open(path);
  ASSERT_TRUE(r.ok());
  BinaryReader reader = r.MoveValueOrDie();
  float buf[3];
  EXPECT_FALSE(reader.ReadFloats(buf, 3).ok());
  std::remove(path.c_str());
}

TEST(CsvTest, WritesRowsWithEscaping) {
  const std::string path = ::testing::TempDir() + "/csv_test.csv";
  {
    auto w = CsvWriter::Open(path);
    ASSERT_TRUE(w.ok());
    CsvWriter csv = w.MoveValueOrDie();
    csv.WriteRow({"a", "b,c", "d\"e"});
    csv.WriteValues("x", 1, 2.5);
    ASSERT_TRUE(csv.Close().ok());
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "a,\"b,c\",\"d\"\"e\"");
  EXPECT_EQ(line2, "x,1,2.5");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rita
