// Property-based sweeps: algebraic invariants of the tensor kernels and the
// autograd engine over randomly drawn shapes, plus end-to-end invariants of
// group attention (row-stochasticity of the restored matrix, permutation
// invariance of the grouping).
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "cluster/kmeans.h"
#include "core/group_attention.h"
#include "tensor/tensor_ops.h"

namespace rita {
namespace {

// Deterministic pseudo-random shape of `dims` dims with sizes in [1, 6].
Shape RandomShape(Rng* rng, int64_t dims) {
  Shape s(dims);
  for (auto& d : s) d = 1 + rng->UniformInt(6);
  return s;
}

class ShapeSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(ShapeSweepTest, AddCommutesAndSubInverts) {
  Rng rng(100 + GetParam());
  const Shape shape = RandomShape(&rng, 1 + rng.UniformInt(4));
  Tensor a = Tensor::RandNormal(shape, &rng);
  Tensor b = Tensor::RandNormal(shape, &rng);
  EXPECT_TRUE(ops::Add(a, b).AllClose(ops::Add(b, a)));
  EXPECT_TRUE(ops::Sub(ops::Add(a, b), b).AllClose(a, 1e-4f, 1e-5f));
}

TEST_P(ShapeSweepTest, MulDistributesOverAdd) {
  Rng rng(200 + GetParam());
  const Shape shape = RandomShape(&rng, 2);
  Tensor a = Tensor::RandNormal(shape, &rng);
  Tensor b = Tensor::RandNormal(shape, &rng);
  Tensor c = Tensor::RandNormal(shape, &rng);
  Tensor lhs = ops::Mul(a, ops::Add(b, c));
  Tensor rhs = ops::Add(ops::Mul(a, b), ops::Mul(a, c));
  EXPECT_TRUE(lhs.AllClose(rhs, 1e-3f, 1e-4f));
}

TEST_P(ShapeSweepTest, MatMulAssociativity) {
  Rng rng(300 + GetParam());
  const int64_t m = 1 + rng.UniformInt(6), k1 = 1 + rng.UniformInt(6);
  const int64_t k2 = 1 + rng.UniformInt(6), n = 1 + rng.UniformInt(6);
  Tensor a = Tensor::RandNormal({m, k1}, &rng);
  Tensor b = Tensor::RandNormal({k1, k2}, &rng);
  Tensor c = Tensor::RandNormal({k2, n}, &rng);
  Tensor lhs = ops::MatMul(ops::MatMul(a, b), c);
  Tensor rhs = ops::MatMul(a, ops::MatMul(b, c));
  EXPECT_TRUE(lhs.AllClose(rhs, 1e-3f, 1e-3f));
}

TEST_P(ShapeSweepTest, TransposeIsAnInvolution) {
  Rng rng(400 + GetParam());
  const Shape shape = RandomShape(&rng, 2 + rng.UniformInt(2));
  Tensor a = Tensor::RandNormal(shape, &rng);
  EXPECT_TRUE(ops::TransposeLast2(ops::TransposeLast2(a)).AllClose(a));
}

TEST_P(ShapeSweepTest, MatMulTransposeIdentity) {
  // (A B)^T == B^T A^T, exercised through the trans flags.
  Rng rng(500 + GetParam());
  const int64_t m = 1 + rng.UniformInt(6), k = 1 + rng.UniformInt(6),
                n = 1 + rng.UniformInt(6);
  Tensor a = Tensor::RandNormal({m, k}, &rng);
  Tensor b = Tensor::RandNormal({k, n}, &rng);
  Tensor lhs = ops::TransposeLast2(ops::MatMul(a, b));
  Tensor rhs = ops::MatMul(b, a, /*trans_a=*/true, /*trans_b=*/true);
  EXPECT_TRUE(lhs.AllClose(rhs, 1e-4f, 1e-4f));
}

TEST_P(ShapeSweepTest, SumDecomposesOverAxes) {
  Rng rng(600 + GetParam());
  const Shape shape = RandomShape(&rng, 3);
  Tensor a = Tensor::RandNormal(shape, &rng);
  // Summing all axes one by one equals SumAll.
  Tensor reduced = ops::Sum(ops::Sum(ops::Sum(a, 2, false), 1, false), 0, false);
  EXPECT_NEAR(reduced.Item(), ops::SumAll(a).Item(), 1e-3f);
}

TEST_P(ShapeSweepTest, SoftmaxInvariantToRowShift) {
  Rng rng(700 + GetParam());
  const Shape shape = RandomShape(&rng, 2);
  Tensor a = Tensor::RandNormal(shape, &rng);
  Tensor shifted = ops::AddScalar(a, static_cast<float>(rng.Uniform(-5.0, 5.0)));
  EXPECT_TRUE(ops::SoftmaxLastDim(a).AllClose(ops::SoftmaxLastDim(shifted), 1e-4f,
                                              1e-5f));
}

TEST_P(ShapeSweepTest, ConcatThenSliceRecovers) {
  Rng rng(800 + GetParam());
  Shape shape = RandomShape(&rng, 3);
  Tensor a = Tensor::RandNormal(shape, &rng);
  Tensor b = Tensor::RandNormal(shape, &rng);
  const int64_t axis = rng.UniformInt(3);
  Tensor cat = ops::Concat({a, b}, axis);
  EXPECT_TRUE(ops::Slice(cat, axis, 0, shape[axis]).AllClose(a));
  EXPECT_TRUE(ops::Slice(cat, axis, shape[axis], shape[axis]).AllClose(b));
}

TEST_P(ShapeSweepTest, BroadcastGradientsConserveMass) {
  // For y = sum(a + b) with b broadcast, grad(b) entries are all equal to the
  // number of broadcast copies (mass conservation of the reduction).
  Rng rng(900 + GetParam());
  const int64_t outer = 1 + rng.UniformInt(5), inner = 1 + rng.UniformInt(5);
  ag::Variable a(Tensor::RandNormal({outer, inner}, &rng), true);
  ag::Variable b(Tensor::RandNormal({inner}, &rng), true);
  ag::SumAll(ag::Add(a, b)).Backward();
  for (int64_t i = 0; i < inner; ++i) {
    EXPECT_FLOAT_EQ(b.grad().data()[i], static_cast<float>(outer));
  }
}

TEST_P(ShapeSweepTest, GradOfLinearMapIsConstant) {
  // d/dx (w . x) == w regardless of x: check at two random points.
  Rng rng(1000 + GetParam());
  const Shape shape = RandomShape(&rng, 2);
  Tensor w = Tensor::RandNormal(shape, &rng);
  auto grad_at = [&](const Tensor& x0) {
    ag::Variable x(x0.Clone(), true);
    ag::SumAll(ag::Mul(x, ag::Variable(w))).Backward();
    return x.grad().Clone();
  };
  Tensor g1 = grad_at(Tensor::RandNormal(shape, &rng));
  Tensor g2 = grad_at(Tensor::RandNormal(shape, &rng));
  EXPECT_TRUE(g1.AllClose(w, 1e-5f, 1e-6f));
  EXPECT_TRUE(g1.AllClose(g2, 1e-5f, 1e-6f));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShapeSweepTest, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Group attention invariants
// ---------------------------------------------------------------------------

class GroupInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(GroupInvariantTest, RestoredAttentionRowsSumToOne) {
  // Group softmax (Eq. 3) guarantees the *restored* matrix is row-stochastic:
  // sum_x A[i, x] = sum_j counts_j * A~[i, j] = 1.
  Rng rng(1100 + GetParam());
  const int64_t n = 8 + rng.UniformInt(12), d = 3 + rng.UniformInt(5);
  Tensor k({n, d});
  k.CopyFrom(Tensor::RandNormal({n, d}, &rng));
  cluster::KMeansOptions km;
  km.num_clusters = 2 + rng.UniformInt(5);
  cluster::KMeansResult grouping = cluster::RunKMeans(k, km, &rng);
  const int64_t ng = grouping.num_clusters();

  Tensor q = Tensor::RandNormal({n, d}, &rng);
  // P~ and the group softmax, exactly as the mechanism computes them.
  Tensor p = ops::MatMul(q, grouping.centroids, false, true);
  ops::ScaleInPlace(&p, 1.0f / std::sqrt(static_cast<float>(d)));
  for (int64_t i = 0; i < n; ++i) {
    const float* row = p.data() + i * ng;
    float mx = row[0];
    for (int64_t j = 1; j < ng; ++j) mx = std::max(mx, row[j]);
    double denom = 0.0;
    for (int64_t j = 0; j < ng; ++j) {
      denom += grouping.counts[j] * std::exp(row[j] - mx);
    }
    double restored_row_sum = 0.0;
    for (int64_t j = 0; j < ng; ++j) {
      restored_row_sum += grouping.counts[j] * std::exp(row[j] - mx) / denom;
    }
    EXPECT_NEAR(restored_row_sum, 1.0, 1e-5);
  }
}

TEST_P(GroupInvariantTest, OutputInvariantToGroupRelabeling) {
  // Permuting cluster ids (with counts/centroids permuted consistently) must
  // not change the attention output — exercised by running the mechanism
  // twice with different rng states on well-separated duplicate keys.
  Rng rng(1200 + GetParam());
  const int64_t blobs = 3, reps = 4, n = blobs * reps, d = 4;
  Tensor centers = Tensor::RandNormal({blobs, d}, &rng, 0.0f, 8.0f);
  Tensor k({1, n, d});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < d; ++j) k.At({0, i, j}) = centers.At({i % blobs, j});
  }
  Tensor q = Tensor::RandNormal({1, n, d}, &rng);
  Tensor v = Tensor::RandNormal({1, n, d}, &rng);

  core::GroupAttentionOptions options;
  options.num_groups = blobs;
  options.kmeans_iters = 8;
  options.kmeanspp_init = true;
  Rng r1(31 + GetParam()), r2(77 + GetParam());  // different cluster labelings
  core::GroupAttentionMechanism m1(d, options, &r1);
  core::GroupAttentionMechanism m2(d, options, &r2);
  Tensor o1 = m1.Forward(ag::Variable(q), ag::Variable(k), ag::Variable(v)).data();
  Tensor o2 = m2.Forward(ag::Variable(q), ag::Variable(k), ag::Variable(v)).data();
  EXPECT_TRUE(o1.AllClose(o2, 1e-4f, 1e-5f));
}

TEST_P(GroupInvariantTest, FewerGroupsNeverIncreaseScoreMemory) {
  Rng rng(1300 + GetParam());
  core::GroupAttentionOptions options;
  options.num_groups = 64;
  core::GroupAttentionMechanism mech(4, options, &rng);
  int64_t prev = mech.ScoreMatrixElements(512);
  for (int64_t n_groups : {32, 16, 8, 4, 2}) {
    mech.set_num_groups(n_groups);
    const int64_t cur = mech.ScoreMatrixElements(512);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupInvariantTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace rita
