// Tests for the linear-algebra substrate: FFT vs naive DFT, FFT-based
// cross-correlation, Jacobi eigendecomposition and the SINK kernel.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/eigen_sym.h"
#include "linalg/fft.h"
#include "linalg/sink_kernel.h"
#include "util/rng.h"

namespace rita {
namespace linalg {
namespace {

TEST(FftTest, NextPow2) {
  EXPECT_EQ(NextPow2(1), 1);
  EXPECT_EQ(NextPow2(2), 2);
  EXPECT_EQ(NextPow2(3), 4);
  EXPECT_EQ(NextPow2(1000), 1024);
}

TEST(FftTest, MatchesNaiveDft) {
  Rng rng(1);
  for (int64_t size : {4, 16, 64}) {
    std::vector<std::complex<double>> data(size);
    for (auto& v : data) v = {rng.Normal(), rng.Normal()};
    auto ref = NaiveDft(data, false);
    auto fast = data;
    Fft(&fast, false);
    for (int64_t i = 0; i < size; ++i) {
      EXPECT_NEAR(fast[i].real(), ref[i].real(), 1e-9) << "size " << size;
      EXPECT_NEAR(fast[i].imag(), ref[i].imag(), 1e-9);
    }
  }
}

TEST(FftTest, RoundTripIdentity) {
  Rng rng(2);
  std::vector<std::complex<double>> data(32);
  for (auto& v : data) v = {rng.Normal(), 0.0};
  auto copy = data;
  Fft(&copy, false);
  Fft(&copy, true);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(copy[i].real(), data[i].real(), 1e-10);
    EXPECT_NEAR(copy[i].imag(), 0.0, 1e-10);
  }
}

TEST(FftTest, ParsevalEnergyPreserved) {
  Rng rng(3);
  std::vector<std::complex<double>> data(64);
  double time_energy = 0.0;
  for (auto& v : data) {
    v = {rng.Normal(), 0.0};
    time_energy += std::norm(v);
  }
  Fft(&data, false);
  double freq_energy = 0.0;
  for (auto& v : data) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / 64.0, time_energy, 1e-8);
}

TEST(CrossCorrelationTest, FftMatchesNaive) {
  Rng rng(4);
  std::vector<double> x(37), y(21);
  for (auto& v : x) v = rng.Normal();
  for (auto& v : y) v = rng.Normal();
  const auto fast = CrossCorrelationFft(x, y);
  const auto ref = CrossCorrelationNaive(x, y);
  ASSERT_EQ(fast.size(), ref.size());
  for (size_t i = 0; i < fast.size(); ++i) EXPECT_NEAR(fast[i], ref[i], 1e-8);
}

TEST(CrossCorrelationTest, SelfCorrelationPeaksAtZeroShift) {
  Rng rng(5);
  std::vector<double> x(50);
  for (auto& v : x) v = rng.Normal();
  const auto cc = CrossCorrelationFft(x, x);
  // Zero shift lives at index m - 1.
  const size_t zero = x.size() - 1;
  for (size_t i = 0; i < cc.size(); ++i) {
    EXPECT_LE(cc[i], cc[zero] + 1e-9);
  }
}

TEST(CrossCorrelationTest, DetectsKnownShift) {
  // y is x delayed by 7: the correlation peak sits at lag +7.
  std::vector<double> x(64, 0.0), y(64, 0.0);
  Rng rng(6);
  for (size_t i = 0; i < 40; ++i) x[i + 7] = rng.Normal();
  for (size_t i = 0; i < 40; ++i) y[i] = x[i + 7];
  const auto cc = CrossCorrelationFft(x, y);
  size_t best = 0;
  for (size_t i = 1; i < cc.size(); ++i) {
    if (cc[i] > cc[best]) best = i;
  }
  EXPECT_EQ(static_cast<int64_t>(best) - (static_cast<int64_t>(y.size()) - 1), 7);
}

TEST(JacobiTest, DiagonalMatrixIsItsOwnDecomposition) {
  Matrix a = {{3.0, 0.0}, {0.0, 1.0}};
  auto eig = JacobiEigenSym(a);
  EXPECT_NEAR(eig.values[0], 1.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 3.0, 1e-10);
}

TEST(JacobiTest, ReconstructsRandomSymmetricMatrix) {
  Rng rng(7);
  const size_t n = 6;
  Matrix a(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      a[i][j] = rng.Normal();
      a[j][i] = a[i][j];
    }
  }
  auto eig = JacobiEigenSym(a);
  // Reconstruct A = V diag(lambda) V^T.
  Matrix recon(n, std::vector<double>(n, 0.0));
  for (size_t r = 0; r < n; ++r) {
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        recon[i][j] += eig.values[r] * eig.vectors[r][i] * eig.vectors[r][j];
      }
    }
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) EXPECT_NEAR(recon[i][j], a[i][j], 1e-8);
  }
}

TEST(JacobiTest, EigenvectorsAreOrthonormal) {
  Rng rng(8);
  const size_t n = 5;
  Matrix a(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      a[i][j] = rng.Normal();
      a[j][i] = a[i][j];
    }
  }
  auto eig = JacobiEigenSym(a);
  for (size_t r = 0; r < n; ++r) {
    for (size_t s = 0; s < n; ++s) {
      double dot = 0.0;
      for (size_t k = 0; k < n; ++k) dot += eig.vectors[r][k] * eig.vectors[s][k];
      EXPECT_NEAR(dot, r == s ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(InverseSqrtTest, SquaresBackToInverse) {
  // For PSD A: (A^{-1/2})^2 A ~ I.
  Matrix a = {{4.0, 1.0}, {1.0, 3.0}};
  Matrix inv_sqrt = InverseSqrtPsd(a);
  Matrix inv = MatrixMultiply(inv_sqrt, inv_sqrt);
  Matrix ident = MatrixMultiply(inv, a);
  EXPECT_NEAR(ident[0][0], 1.0, 1e-8);
  EXPECT_NEAR(ident[1][1], 1.0, 1e-8);
  EXPECT_NEAR(ident[0][1], 0.0, 1e-8);
}

TEST(InverseSqrtTest, RankDeficientClipsGracefully) {
  Matrix a = {{1.0, 1.0}, {1.0, 1.0}};  // rank 1
  Matrix inv_sqrt = InverseSqrtPsd(a);
  for (auto& row : inv_sqrt) {
    for (double v : row) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(ZNormalizeTest, MeanZeroUnitVariance) {
  std::vector<double> s = {1, 2, 3, 4, 5};
  ZNormalize(&s);
  double mean = 0.0, var = 0.0;
  for (double v : s) mean += v;
  mean /= s.size();
  for (double v : s) var += (v - mean) * (v - mean);
  var /= s.size();
  EXPECT_NEAR(mean, 0.0, 1e-10);
  EXPECT_NEAR(var, 1.0, 1e-10);
}

TEST(ZNormalizeTest, ConstantSeriesBecomesZeros) {
  std::vector<double> s(10, 3.5);
  ZNormalize(&s);
  for (double v : s) EXPECT_EQ(v, 0.0);
}

TEST(SinkTest, SelfSimilarityIsOne) {
  Rng rng(9);
  std::vector<double> x(40);
  for (auto& v : x) v = rng.Normal();
  EXPECT_NEAR(SinkSimilarity(x, x, 5.0), 1.0, 1e-10);
}

TEST(SinkTest, ShiftInvariance) {
  // SINK considers all alignments: a shifted copy scores near the original.
  Rng rng(10);
  std::vector<double> x(64, 0.0);
  for (size_t i = 8; i < 40; ++i) x[i] = rng.Normal();
  std::vector<double> shifted(64, 0.0);
  for (size_t i = 0; i < 56; ++i) shifted[i + 8] = x[i];
  const double self = SinkSimilarity(x, x, 5.0);
  const double with_shift = SinkSimilarity(x, shifted, 5.0);
  EXPECT_GT(with_shift, 0.8 * self);
}

TEST(SinkTest, DissimilarSeriesScoreLower) {
  Rng rng(11);
  std::vector<double> x(64), y(64);
  for (size_t i = 0; i < 64; ++i) {
    x[i] = std::sin(0.3 * static_cast<double>(i));
    y[i] = rng.Normal();
  }
  std::vector<double> x2 = x;  // phase-shifted same signal
  std::rotate(x2.begin(), x2.begin() + 5, x2.end());
  EXPECT_GT(SinkSimilarity(x, x2, 5.0), SinkSimilarity(x, y, 5.0));
}

TEST(MaxNccTest, BoundedByOne) {
  Rng rng(12);
  std::vector<double> x(32), y(32);
  for (auto& v : x) v = rng.Normal();
  for (auto& v : y) v = rng.Normal();
  const double ncc = MaxNcc(x, y);
  EXPECT_LE(ncc, 1.0 + 1e-9);
  EXPECT_NEAR(MaxNcc(x, x), 1.0, 1e-9);
}

}  // namespace
}  // namespace linalg
}  // namespace rita
